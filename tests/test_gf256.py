"""Field-axiom and operation tests for the accelerated GF(2^8) engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.gf256 import (
    FIELD_SIZE,
    GENERATOR,
    GF256,
    REDUCTION_POLY,
    exp_table,
    log_table,
)

bytes_st = st.integers(min_value=0, max_value=255)
nonzero_st = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_table_is_doubled_period(self):
        table = exp_table()
        assert table.shape == (510,)
        assert np.array_equal(table[:255], table[255:])

    def test_exp_log_are_inverse_bijections(self):
        exp, log = exp_table(), log_table()
        for value in range(1, FIELD_SIZE):
            assert exp[log[value]] == value

    def test_generator_is_primitive(self):
        # Powers of the generator must enumerate all 255 nonzero elements.
        seen = {GF256.power(GENERATOR, k) for k in range(255)}
        assert seen == set(range(1, 256))

    def test_reduction_poly_is_rijndael(self):
        assert REDUCTION_POLY == 0x11B


class TestAxioms:
    @given(bytes_st, bytes_st)
    def test_addition_is_xor_and_commutative(self, a, b):
        assert int(GF256.add(a, b)) == a ^ b
        assert int(GF256.add(a, b)) == int(GF256.add(b, a))

    @given(bytes_st)
    def test_addition_self_inverse(self, a):
        assert int(GF256.add(a, a)) == 0

    @given(bytes_st, bytes_st)
    def test_multiplication_commutative(self, a, b):
        assert int(GF256.multiply(a, b)) == int(GF256.multiply(b, a))

    @given(bytes_st, bytes_st, bytes_st)
    def test_multiplication_associative(self, a, b, c):
        left = GF256.multiply(GF256.multiply(a, b), c)
        right = GF256.multiply(a, GF256.multiply(b, c))
        assert int(left) == int(right)

    @given(bytes_st, bytes_st, bytes_st)
    def test_distributivity(self, a, b, c):
        left = GF256.multiply(a, GF256.add(b, c))
        right = GF256.add(GF256.multiply(a, b), GF256.multiply(a, c))
        assert int(left) == int(right)

    @given(bytes_st)
    def test_multiplicative_identity(self, a):
        assert int(GF256.multiply(a, 1)) == a

    @given(bytes_st)
    def test_zero_annihilates(self, a):
        assert int(GF256.multiply(a, 0)) == 0

    @given(nonzero_st)
    def test_inverse_roundtrip(self, a):
        inv = int(GF256.inverse(a))
        assert int(GF256.multiply(a, inv)) == 1

    @given(nonzero_st, nonzero_st)
    def test_division_consistency(self, a, b):
        quotient = int(GF256.divide(a, b))
        assert int(GF256.multiply(quotient, b)) == a


class TestVectorized:
    def test_multiply_broadcasts_over_arrays(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, 500, dtype=np.uint8)
        b = rng.integers(0, 256, 500, dtype=np.uint8)
        products = GF256.multiply(a, b)
        for index in range(0, 500, 37):
            assert products[index] == int(
                GF256.multiply(int(a[index]), int(b[index]))
            )

    def test_inverse_raises_on_zero_anywhere(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inverse(np.array([1, 0, 3], dtype=np.uint8))

    def test_divide_raises_on_zero_divisor(self):
        with pytest.raises(ZeroDivisionError):
            GF256.divide(5, 0)

    def test_scale_row_matches_elementwise(self):
        rng = np.random.default_rng(2)
        row = rng.integers(0, 256, 64, dtype=np.uint8)
        scaled = GF256.scale_row(row, 0x53)
        expected = GF256.multiply(row, np.full(64, 0x53, dtype=np.uint8))
        assert np.array_equal(scaled, expected)

    def test_addmul_row_in_place(self):
        rng = np.random.default_rng(3)
        target = rng.integers(0, 256, 32, dtype=np.uint8)
        source = rng.integers(0, 256, 32, dtype=np.uint8)
        original = target.copy()
        GF256.addmul_row(target, source, 0x1D)
        expected = GF256.add(original, GF256.scale_row(source, 0x1D))
        assert np.array_equal(target, expected)

    def test_addmul_row_zero_coefficient_is_noop(self):
        target = np.array([1, 2, 3], dtype=np.uint8)
        GF256.addmul_row(target, np.array([9, 9, 9], dtype=np.uint8), 0)
        assert np.array_equal(target, [1, 2, 3])


class TestMatmul:
    def test_identity_matmul(self):
        rng = np.random.default_rng(4)
        m = rng.integers(0, 256, (5, 7), dtype=np.uint8)
        identity = np.eye(5, dtype=np.uint8)
        assert np.array_equal(GF256.matmul(identity, m), m)

    def test_matmul_associativity(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 256, (3, 4), dtype=np.uint8)
        b = rng.integers(0, 256, (4, 5), dtype=np.uint8)
        c = rng.integers(0, 256, (5, 2), dtype=np.uint8)
        left = GF256.matmul(GF256.matmul(a, b), c)
        right = GF256.matmul(a, GF256.matmul(b, c))
        assert np.array_equal(left, right)

    def test_matmul_shape_mismatch(self):
        a = np.zeros((2, 3), dtype=np.uint8)
        b = np.zeros((4, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            GF256.matmul(a, b)

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            GF256.matmul(np.zeros(3, dtype=np.uint8), np.zeros((3, 1), dtype=np.uint8))

    def test_matvec(self):
        rng = np.random.default_rng(6)
        a = rng.integers(0, 256, (4, 6), dtype=np.uint8)
        v = rng.integers(0, 256, 6, dtype=np.uint8)
        assert np.array_equal(GF256.matvec(a, v), GF256.matmul(a, v[:, None])[:, 0])

    def test_matvec_requires_1d(self):
        with pytest.raises(ValueError):
            GF256.matvec(np.zeros((2, 2), dtype=np.uint8), np.zeros((2, 1), dtype=np.uint8))


class TestPower:
    def test_power_zero_exponent(self):
        assert GF256.power(7, 0) == 1

    def test_power_of_zero(self):
        assert GF256.power(0, 5) == 0

    def test_power_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            GF256.power(3, -1)

    @given(nonzero_st)
    @settings(max_examples=30)
    def test_fermat_little_theorem(self, a):
        # a^255 = 1 for every nonzero element (multiplicative group order).
        assert GF256.power(a, 255) == 1
