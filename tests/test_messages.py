"""Message-passing execution must track the fast driver."""

import pytest

from repro.optimization.messages import MessagePassingRateControl
from repro.optimization.problem import session_graph_from_network
from repro.optimization.rate_control import RateControlAlgorithm, RateControlConfig
from repro.topology.random_network import diamond_topology, fig1_sample_topology


class TestMessagePassing:
    def test_matches_fast_driver_on_fig1(self):
        graph = session_graph_from_network(fig1_sample_topology(), 0, 5)
        fast = RateControlAlgorithm(graph).run()
        mp = MessagePassingRateControl(graph)
        result = mp.run()
        assert result.throughput == pytest.approx(fast.throughput, rel=0.1)
        for node in graph.nodes:
            assert result.broadcast_rates[node] == pytest.approx(
                fast.broadcast_rates[node], abs=0.08
            )

    def test_matches_fast_driver_on_diamond(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        fast = RateControlAlgorithm(graph).run()
        result = MessagePassingRateControl(graph).run()
        assert result.throughput == pytest.approx(fast.throughput, rel=0.1)

    def test_message_counters_populated(self):
        graph = session_graph_from_network(fig1_sample_topology(), 0, 5)
        mp = MessagePassingRateControl(
            graph, RateControlConfig(max_iterations=20, min_iterations=1)
        )
        mp.run()
        stats = mp.stats
        assert stats.distance_advertisements > 0
        assert stats.flow_setup_tokens > 0
        assert stats.rate_price_broadcasts > 0
        assert stats.total == (
            stats.distance_advertisements
            + stats.flow_setup_tokens
            + stats.rate_price_broadcasts
        )

    def test_messages_are_one_hop_only(self):
        # Structural property: the per-iteration rate/price broadcast count
        # equals 2 messages per node per iteration (the b/beta exchange),
        # confirming nothing global is being consulted.
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        config = RateControlConfig(max_iterations=7, min_iterations=1, patience=100)
        mp = MessagePassingRateControl(graph, config)
        mp.run()
        assert mp.stats.rate_price_broadcasts == 2 * len(graph.nodes) * mp.iteration

    def test_history_recorded(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        mp = MessagePassingRateControl(
            graph, RateControlConfig(max_iterations=15, min_iterations=1, patience=100)
        )
        result = mp.run()
        assert len(result.rate_history) == result.iterations
