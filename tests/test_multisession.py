"""Multi-session data plane: composites, the driver, and the N-session
shards=1 == shards=N digest oracle (including churn)."""

import pytest

from repro.emulator.multisession import (
    MultiSessionOutcome,
    multi_session_digest,
    run_multi_session,
)
from repro.emulator.node import (
    FlowDestinationRuntime,
    FlowSourceRuntime,
    MultiSessionNodeRuntime,
    XorPacket,
)
from repro.emulator.session import SessionConfig
from repro.emulator.shard import trace_digest
from repro.emulator.trace import SessionTracer
from repro.protocols.etx_routing import plan_etx_route
from repro.protocols.more import plan_more
from repro.protocols.omnc import plan_omnc
from repro.routing.node_selection import NodeSelectionError
from repro.scenario.spec import ScenarioEvent, ScenarioSpec
from repro.topology.random_network import random_network
from repro.util.rng import RngFactory

ORACLE_SEEDS = (1, 2008, 77)


def _quick_config(**overrides):
    defaults = dict(
        blocks=8, block_size=256, max_seconds=12.0, target_generations=0
    )
    defaults.update(overrides)
    return SessionConfig(**defaults)


def _three_session_mesh(seed, nodes=40):
    """A seeded mesh plus three feasible disjoint-endpoint plans."""
    network = random_network(nodes, rng=seed)
    plans = {}
    used = set()
    sid = 1
    for source in range(nodes):
        if sid > 3:
            break
        if source in used:
            continue
        for destination in range(nodes - 1, -1, -1):
            if destination == source or destination in used:
                continue
            planner = plan_omnc if sid % 2 else plan_more
            try:
                plans[sid] = planner(network, source, destination)
            except NodeSelectionError:
                continue
            used.update((source, destination))
            sid += 1
            break
    if len(plans) < 3:
        raise RuntimeError(f"seed {seed}: fewer than 3 feasible sessions")
    return network, plans


def _churn_scenario(duration):
    """Session 3 arrives at 1/3 of the run; session 2 departs at 2/3."""
    return ScenarioSpec(
        name="churn",
        duration=duration,
        epoch_seconds=duration,
        events=(
            ScenarioEvent(
                at=duration / 3, kind="session_arrive", session_id=3
            ),
            ScenarioEvent(
                at=2 * duration / 3, kind="session_depart", session_id=2
            ),
        ),
    )


def _fresh_flow_runtime(node_id, session_id, role="source"):
    if role == "source":
        runtime = FlowSourceRuntime(
            node_id, session_id, blocks=4, rate_bps=4096.0, packet_bytes=256
        )
        runtime.on_slot(1.0)  # accrue credit: 16 packets queued
        return runtime
    return FlowDestinationRuntime(
        node_id, session_id, blocks=4, on_decoded=lambda generation: None
    )


class TestXorPacket:
    def test_components_sorted_by_session(self):
        a = _fresh_flow_runtime(0, 2).pop_transmission()
        b = _fresh_flow_runtime(1, 1).pop_transmission()
        packet = XorPacket((a, b))
        assert [c.session_id for c in packet.components] == [1, 2]
        assert packet.session_ids == (1, 2)

    def test_rejects_single_session(self):
        a = _fresh_flow_runtime(0, 1).pop_transmission()
        b = _fresh_flow_runtime(1, 1).pop_transmission()
        with pytest.raises(ValueError):
            XorPacket((a, b))


class TestMultiSessionComposite:
    def test_routes_by_session_id(self):
        composite = MultiSessionNodeRuntime(5)
        composite.add_session(1, _fresh_flow_runtime(5, 1, role="dest"))
        composite.add_session(2, _fresh_flow_runtime(5, 2, role="dest"))
        packet = _fresh_flow_runtime(0, 2).pop_transmission()
        composite.on_receive(packet, sender=0)
        stats = composite.session_stats()
        assert stats[2]["delivered_links"] == [(0, 5)]
        assert stats[1]["delivered_links"] == []

    def test_drops_unhosted_and_dormant_sessions(self):
        composite = MultiSessionNodeRuntime(5)
        composite.add_session(
            1, _fresh_flow_runtime(5, 1, role="dest"), active=False
        )
        composite.on_receive(
            _fresh_flow_runtime(0, 1).pop_transmission(), sender=0
        )
        composite.on_receive(
            _fresh_flow_runtime(0, 9).pop_transmission(), sender=0
        )
        assert composite.session_stats()[1]["delivered_links"] == []

    def test_round_robin_pop_interleaves_sessions(self):
        composite = MultiSessionNodeRuntime(3)
        composite.add_session(1, _fresh_flow_runtime(3, 1))
        composite.add_session(2, _fresh_flow_runtime(3, 2))
        seen = [composite.pop_transmission().session_id for _ in range(4)]
        assert seen == [1, 2, 1, 2]

    def test_single_session_advance_raises(self):
        composite = MultiSessionNodeRuntime(3)
        composite.add_session(1, _fresh_flow_runtime(3, 1))
        with pytest.raises(RuntimeError, match="advance_session_generation"):
            composite.advance_generation(1)

    def test_activation_round_trip(self):
        composite = MultiSessionNodeRuntime(3)
        composite.add_session(1, _fresh_flow_runtime(3, 1), active=False)
        assert composite.active_sessions() == ()
        assert composite.hosted_sessions() == (1,)
        composite.activate_session(1)
        assert composite.active_sessions() == (1,)
        composite.deactivate_session(1)
        assert composite.active_sessions() == ()

    def test_duplicate_session_rejected(self):
        composite = MultiSessionNodeRuntime(3)
        composite.add_session(1, _fresh_flow_runtime(3, 1))
        with pytest.raises(ValueError):
            composite.add_session(1, _fresh_flow_runtime(3, 1))


class TestRunMultiSession:
    def test_per_session_results_and_aggregate(self):
        network, plans = _three_session_mesh(2008)
        outcome = run_multi_session(
            network, plans, config=_quick_config(), rng=RngFactory(2008)
        )
        assert isinstance(outcome, MultiSessionOutcome)
        assert outcome.session_ids == (1, 2, 3)
        assert outcome.aggregate_throughput_bps == pytest.approx(
            sum(outcome.throughputs().values())
        )
        assert 0.0 <= outcome.fairness <= 1.0
        assert outcome.transmissions > 0
        for sid, result in outcome.sessions.items():
            assert result.duration == pytest.approx(outcome.duration)

    def test_fixed_seed_reproduces_exactly(self):
        network, plans = _three_session_mesh(2008)
        digests = []
        for _ in range(2):
            outcome = run_multi_session(
                network, plans, config=_quick_config(), rng=RngFactory(77)
            )
            digests.append(multi_session_digest(outcome))
        assert digests[0] == digests[1]

    def test_unicast_plans_rejected(self):
        network, plans = _three_session_mesh(2008)
        source = plans[1].forwarders.source
        destination = plans[1].forwarders.destination
        plans[1] = plan_etx_route(network, source, destination)
        with pytest.raises(TypeError, match="coded"):
            run_multi_session(
                network, plans, config=_quick_config(), rng=RngFactory(1)
            )

    def test_empty_plans_rejected(self):
        network, _ = _three_session_mesh(2008)
        with pytest.raises(ValueError):
            run_multi_session(
                network, {}, config=_quick_config(), rng=RngFactory(1)
            )

    def test_churn_records_arrivals_and_departures(self):
        network, plans = _three_session_mesh(2008)
        config = _quick_config()
        outcome = run_multi_session(
            network,
            plans,
            config=config,
            rng=RngFactory(2008),
            scenario=_churn_scenario(config.max_seconds),
        )
        assert [sid for _, sid in outcome.arrivals] == [3]
        assert [sid for _, sid in outcome.departures] == [2]
        (arrive_at, _), (depart_at, _) = (
            outcome.arrivals[0],
            outcome.departures[0],
        )
        assert arrive_at == pytest.approx(config.max_seconds / 3, abs=0.1)
        assert depart_at == pytest.approx(
            2 * config.max_seconds / 3, abs=0.1
        )

    def test_churn_event_for_unknown_session_rejected(self):
        network, plans = _three_session_mesh(2008)
        scenario = ScenarioSpec(
            name="bad",
            duration=12.0,
            epoch_seconds=12.0,
            events=(
                ScenarioEvent(at=4.0, kind="session_arrive", session_id=9),
            ),
        )
        with pytest.raises(ValueError, match="unknown session"):
            run_multi_session(
                network,
                plans,
                config=_quick_config(),
                rng=RngFactory(1),
                scenario=scenario,
            )


class TestMultiSessionShardOracle:
    """shards=1 == shards=N, extended to N concurrent sessions."""

    @pytest.mark.parametrize("seed", ORACLE_SEEDS)
    def test_three_sessions_bit_identical(self, seed):
        network, plans = _three_session_mesh(seed)
        digests = {}
        for shards in (1, 2):
            tracer = SessionTracer(capacity=500_000)
            outcome = run_multi_session(
                network,
                plans,
                shards=shards,
                config=_quick_config(),
                rng=RngFactory(seed),
                tracer=tracer,
            )
            digests[shards] = (
                multi_session_digest(outcome),
                trace_digest(tracer),
            )
        assert digests[1] == digests[2]

    @pytest.mark.parametrize("seed", ORACLE_SEEDS)
    def test_churn_bit_identical(self, seed):
        """One arrival and one departure mid-run, across the barrier."""
        network, plans = _three_session_mesh(seed)
        config = _quick_config()
        digests = {}
        for shards in (1, 2):
            tracer = SessionTracer(capacity=500_000)
            outcome = run_multi_session(
                network,
                plans,
                shards=shards,
                config=config,
                rng=RngFactory(seed),
                scenario=_churn_scenario(config.max_seconds),
                tracer=tracer,
            )
            digests[shards] = (
                multi_session_digest(outcome),
                trace_digest(tracer),
            )
        assert digests[1] == digests[2]

    def test_four_shards_bit_identical(self):
        network, plans = _three_session_mesh(2008)
        config = _quick_config()
        digests = {}
        for shards in (1, 4):
            outcome = run_multi_session(
                network,
                plans,
                shards=shards,
                config=config,
                rng=RngFactory(2008),
                scenario=_churn_scenario(config.max_seconds),
            )
            digests[shards] = multi_session_digest(outcome)
        assert digests[1] == digests[4]
