"""Pseudo-broadcast cost model and reliable flood."""

import pytest

from repro.routing.pseudo_broadcast import (
    neighborhood_broadcast_cost,
    reliable_flood,
)
from repro.topology.random_network import (
    chain_topology,
    diamond_topology,
    random_network,
)
from repro.util.rng import RngFactory


class TestNeighborhoodCost:
    def test_single_perfect_neighbor_costs_one(self):
        net = chain_topology((1.0,))
        cost = neighborhood_broadcast_cost(net, 0)
        assert cost.transmissions == pytest.approx(1.0)
        assert cost.covered == frozenset({1})

    def test_lossy_neighbor_costs_expected_retries(self):
        net = chain_topology((0.5,))
        cost = neighborhood_broadcast_cost(net, 0)
        assert cost.transmissions == pytest.approx(2.0)

    def test_multiple_neighbors_benefit_from_overhearing(self):
        # Source with two neighbors: retransmissions for the first also
        # cover the second, so cost < sum of individual costs.
        net = diamond_topology(p_su=0.5, p_sv=0.5)
        cost = neighborhood_broadcast_cost(net, 0)
        assert cost.covered == frozenset({1, 2})
        # Never worse than unicasting to each neighbor separately.
        assert 2.0 <= cost.transmissions <= 4.0

    def test_no_neighbors(self):
        net = chain_topology((0.5,))
        cost = neighborhood_broadcast_cost(net, 1)  # node 1 has no out-links
        assert cost.transmissions == 0.0
        assert cost.covered == frozenset()


class TestReliableFlood:
    def test_flood_covers_connected_component(self):
        net = random_network(60, rng=RngFactory(5).derive("t"))
        result = reliable_flood(net, 0)
        # Every reached node heard the flood; origin always included.
        assert 0 in result.reached
        assert len(result.reached) > 1
        assert result.total_transmissions > 0

    def test_flood_restricted_to_eligible_forwarders(self):
        net = chain_topology((0.9, 0.9, 0.9))
        full = reliable_flood(net, 0)
        assert full.reached == frozenset({0, 1, 2, 3})
        # Node 1 may receive but not forward: flood stops at 1's radio
        # horizon (node 2 is still within 0's and 1's shared range zone
        # only via 1's forwarding in this chain geometry? node 2 is two
        # hops from 0 geometrically in range, so it may still be covered).
        limited = reliable_flood(net, 0, eligible=frozenset({0}))
        assert limited.reached <= full.reached

    def test_flood_origin_validated(self):
        net = chain_topology((0.5,))
        with pytest.raises(ValueError):
            reliable_flood(net, 9)

    def test_forward_order_starts_at_origin(self):
        net = chain_topology((0.9, 0.9))
        result = reliable_flood(net, 0)
        assert result.forward_order[0] == 0
