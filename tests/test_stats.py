"""Figure metrics: gains, DAG path counting, utility, distributions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.session import SessionResult
from repro.emulator.stats import (
    ascii_cdf,
    count_dag_paths,
    jain_fairness_index,
    summarize,
    throughput_gain,
    utility_ratios,
)
from repro.routing.node_selection import ForwarderSet


def make_result(**overrides):
    defaults = dict(
        protocol="omnc",
        source=0,
        destination=3,
        throughput_bps=1000.0,
        duration=10.0,
        generations_decoded=1,
        packets_delivered=40,
        ack_times=(10.0,),
        average_queues={0: 0.5, 1: 1.5, 2: 0.0},
        transmissions={0: 10, 1: 5, 2: 0},
        participants=(0, 1, 2, 3),
        delivered_links=((0, 1), (1, 3)),
    )
    defaults.update(overrides)
    return SessionResult(**defaults)


class TestThroughputGain:
    def test_simple_ratio(self):
        a = make_result(throughput_bps=2000.0)
        b = make_result(throughput_bps=1000.0, protocol="etx")
        assert throughput_gain(a, b) == pytest.approx(2.0)

    def test_zero_baseline_inf(self):
        a = make_result(throughput_bps=10.0)
        b = make_result(throughput_bps=0.0, protocol="etx")
        assert throughput_gain(a, b) == float("inf")

    def test_both_zero(self):
        a = make_result(throughput_bps=0.0)
        b = make_result(throughput_bps=0.0)
        assert throughput_gain(a, b) == 0.0


class TestPathCounting:
    def test_diamond_has_two_paths(self):
        links = [(0, 1), (0, 2), (1, 3), (2, 3)]
        assert count_dag_paths(links, 0, 3) == 2

    def test_chain_has_one_path(self):
        assert count_dag_paths([(0, 1), (1, 2)], 0, 2) == 1

    def test_disconnected_zero(self):
        assert count_dag_paths([(0, 1)], 0, 3) == 0

    def test_layered_dag_multiplies(self):
        # Two parallel nodes per layer, two layers: 2 * 2 = 4 paths.
        links = [
            (0, 1), (0, 2),
            (1, 3), (1, 4), (2, 3), (2, 4),
            (3, 5), (4, 5),
        ]
        assert count_dag_paths(links, 0, 5) == 4

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            count_dag_paths([(0, 1), (1, 0)], 0, 1)

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=10)
    def test_parallel_chain_count(self, width):
        # width disjoint 2-hop paths source->relay_k->destination.
        links = []
        for k in range(width):
            relay = k + 1
            links.append((0, relay))
            links.append((relay, 99))
        assert count_dag_paths(links, 0, 99) == width


class TestUtilityRatios:
    def _forwarders(self):
        return ForwarderSet(
            source=0,
            destination=3,
            nodes=frozenset({0, 1, 2, 3}),
            etx_distance={0: 3.0, 1: 1.2, 2: 1.1, 3: 0.0},
            dag_links=((0, 1), (0, 2), (1, 3), (2, 3)),
        )

    def test_full_utilization(self):
        result = make_result(
            transmissions={0: 5, 1: 5, 2: 5, 3: 0},
            delivered_links=((0, 1), (0, 2), (1, 3), (2, 3)),
        )
        ratios = utility_ratios(result, self._forwarders())
        assert ratios.node_utility == pytest.approx(1.0)
        assert ratios.path_utility == pytest.approx(1.0)

    def test_pruned_relay_halves_both(self):
        result = make_result(
            transmissions={0: 5, 1: 5, 2: 0, 3: 0},
            delivered_links=((0, 1), (1, 3)),
        )
        ratios = utility_ratios(result, self._forwarders())
        assert ratios.node_utility == pytest.approx(2 / 3)
        assert ratios.path_utility == pytest.approx(0.5)

    def test_destination_excluded_from_node_count(self):
        result = make_result(transmissions={0: 5, 1: 5, 2: 5, 3: 100})
        ratios = utility_ratios(result, self._forwarders())
        assert ratios.node_utility == pytest.approx(1.0)


class TestSummarize:
    def test_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4

    def test_cdf_coordinates(self):
        summary = summarize([3.0, 1.0, 2.0])
        assert summary.cdf_x == (1.0, 2.0, 3.0)
        assert summary.cdf_y == pytest.approx((1 / 3, 2 / 3, 1.0))

    def test_fraction_below(self):
        summary = summarize([0.5, 1.5, 2.5, 3.5])
        assert summary.fraction_below(2.0) == pytest.approx(0.5)
        assert summary.fraction_below(0.0) == 0.0
        assert summary.fraction_below(100.0) == 1.0

    def test_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.fraction_below(1.0) == 0.0

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=25)
    def test_cdf_is_monotone(self, values):
        summary = summarize(values)
        assert list(summary.cdf_x) == sorted(summary.cdf_x)
        assert list(summary.cdf_y) == sorted(summary.cdf_y)
        assert summary.cdf_y[-1] == pytest.approx(1.0)


class TestAsciiCdf:
    def test_renders_label_and_bounds(self):
        summary = summarize([1.0, 2.0, 5.0])
        art = ascii_cdf(summary, label="test curve")
        assert "test curve" in art
        assert "*" in art

    def test_empty_distribution(self):
        assert "(no data)" in ascii_cdf(summarize([]), label="x")


class TestJainFairness:
    def test_equal_allocations_are_perfectly_fair(self):
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_session_is_fair(self):
        assert jain_fairness_index([123.4]) == pytest.approx(1.0)

    def test_known_two_session_split(self):
        # (1+3)^2 / (2 * (1+9)) = 16/20
        assert jain_fairness_index([1.0, 3.0]) == pytest.approx(0.8)

    def test_starvation_approaches_one_over_n(self):
        assert jain_fairness_index([100.0, 0.0, 0.0, 0.0]) == pytest.approx(
            0.25
        )

    def test_empty_returns_zero(self):
        assert jain_fairness_index([]) == 0.0

    def test_all_zero_is_degenerately_fair(self):
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            jain_fairness_index([1.0, -0.5])

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6),
            min_size=1,
            max_size=16,
        ).filter(lambda xs: any(x > 0.0 for x in xs))
    )
    @settings(max_examples=25)
    def test_bounded_between_one_over_n_and_one(self, values):
        index = jain_fairness_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9
