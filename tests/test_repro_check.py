"""Tests for ``repro check`` — the whole-program RPR1xx analyzer.

Each rule gets seeded-regression fixtures: a tiny synthetic project is
written to ``tmp_path`` with its own ``[tool.repro.check]`` contract,
and the rule must fire on the planted violation (and stay silent on the
clean variant).  The CLI, baseline reuse and output formats are driven
end to end through ``repro.cli.main``; the final class asserts the
shipped tree itself sweeps clean — the hard CI gate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    CHECK_RULE_CODES,
    build_project,
    load_check_config,
    run_project_rules,
)
from repro.analysis.checker import CheckConfigError
from repro.analysis.findings import Finding
from repro.analysis.modgraph import module_name_for
from repro.analysis.baseline import load_baseline, save_baseline
from repro.cli import main as cli_main

PYPROJECT = """\
[tool.repro.check]
package = "pkg"
layers = [
    ["util"],
    ["low", "peer"],
    ["mid"],
    ["high"],
]
layer-waivers = [{waivers}]
payload-types = [{payloads}]
worker-roots = [{workers}]
rng-modules = ["pkg.util.rng"]
"""


def make_project(
    tmp_path: Path,
    files: dict[str, str],
    *,
    waivers: str = "",
    payloads: str = '"pkg.low.payload.Box"',
    workers: str = '"pkg.low.worker"',
) -> Path:
    """Write a synthetic project; returns its root directory."""
    (tmp_path / "pyproject.toml").write_text(
        PYPROJECT.format(waivers=waivers, payloads=payloads, workers=workers)
    )
    defaults = {
        "pkg/__init__.py": "",
        "pkg/util/__init__.py": "",
        "pkg/util/rng.py": (
            "def as_rng(seed):\n    return seed\n"
            "def fallback_rng():\n    return 0\n"
        ),
        "pkg/low/__init__.py": "",
        "pkg/low/payload.py": (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Box:\n"
            "    seed: int\n"
        ),
        "pkg/low/worker.py": "",
        "pkg/peer/__init__.py": "",
        "pkg/mid/__init__.py": "",
        "pkg/high/__init__.py": "",
    }
    for rel, content in {**defaults, **files}.items():
        target = tmp_path / "src" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(content)
    return tmp_path


def check(root: Path, select: tuple[str, ...] = CHECK_RULE_CODES) -> list[Finding]:
    config = load_check_config(root / "pyproject.toml")
    project = build_project(root / "src", config.package)
    return run_project_rules(project, config, select)


def rules_of(findings: list[Finding]) -> list[str]:
    return [f.rule for f in findings]


class TestModuleGraph:
    def test_module_name_for(self, tmp_path: Path):
        root = tmp_path / "src"
        assert (
            module_name_for(root / "pkg" / "low" / "worker.py", root)
            == "pkg.low.worker"
        )
        assert module_name_for(root / "pkg" / "__init__.py", root) == "pkg"

    def test_edge_kinds(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/uses.py": (
                    "from typing import TYPE_CHECKING\n"
                    "import pkg.low.payload\n"
                    "if TYPE_CHECKING:\n"
                    "    import pkg.high\n"
                    "def f():\n"
                    "    import pkg.util.rng\n"
                ),
            },
        )
        project = build_project(root / "src", "pkg")
        kinds = {
            edge.target: edge.kind
            for edge in project.edges
            if edge.importer == "pkg.mid.uses"
        }
        assert kinds == {
            "pkg.low.payload": "toplevel",
            "pkg.high": "typing",
            "pkg.util.rng": "lazy",
        }

    def test_relative_imports_resolve(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/sibling.py": "X = 1\n",
                "pkg/low/uses.py": "from .sibling import X\n",
            },
        )
        project = build_project(root / "src", "pkg")
        assert any(
            e.importer == "pkg.low.uses" and e.target == "pkg.low.sibling"
            for e in project.edges
        )


class TestRPR101Layering:
    def test_upward_import_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path, {"pkg/low/bad.py": "import pkg.high\n"}
        )
        findings = check(root, ("RPR101",))
        assert rules_of(findings) == ["RPR101"]
        assert "layering violation" in findings[0].message
        assert findings[0].path == "src/pkg/low/bad.py"

    def test_downward_and_same_band_allowed(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/high/fine.py": "import pkg.low.payload\n",
                "pkg/low/fine.py": "import pkg.peer\n",
            },
        )
        assert check(root, ("RPR101",)) == []

    def test_type_checking_import_exempt(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/typed.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    import pkg.high\n"
                ),
            },
        )
        assert check(root, ("RPR101",)) == []

    def test_lazy_upward_import_still_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/lazy.py": (
                    "def f():\n    import pkg.high\n    return pkg.high\n"
                ),
            },
        )
        assert rules_of(check(root, ("RPR101",))) == ["RPR101"]

    def test_waiver_suppresses(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {"pkg/low/bad.py": "import pkg.high\n"},
            waivers='"low -> high"',
        )
        assert check(root, ("RPR101",)) == []

    def test_unknown_unit_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/rogue/__init__.py": "",
                "pkg/rogue/mod.py": "import pkg.low.payload\n",
            },
        )
        findings = check(root, ("RPR101",))
        assert any("not covered by the layering contract" in f.message
                   for f in findings)

    def test_cycle_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/a.py": "import pkg.mid.b\n",
                "pkg/mid/b.py": "import pkg.mid.a\n",
            },
        )
        findings = check(root, ("RPR101",))
        assert rules_of(findings) == ["RPR101"]
        assert "import cycle" in findings[0].message
        assert "pkg.mid.a -> pkg.mid.b -> pkg.mid.a" in findings[0].message

    def test_lazy_cycle_still_flagged(self, tmp_path: Path):
        # A deferred import is still a runtime cycle for layering.
        root = make_project(
            tmp_path,
            {
                "pkg/mid/a.py": "import pkg.mid.b\n",
                "pkg/mid/b.py": "def f():\n    import pkg.mid.a\n",
            },
        )
        assert any(
            "import cycle" in f.message for f in check(root, ("RPR101",))
        )

    def test_typing_back_edge_is_not_a_cycle(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/a.py": "import pkg.mid.b\n",
                "pkg/mid/b.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    import pkg.mid.a\n"
                ),
            },
        )
        assert check(root, ("RPR101",)) == []

    def test_pragma_suppresses(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {"pkg/low/bad.py": "import pkg.high  # repro: ignore[RPR101]\n"},
        )
        assert check(root, ("RPR101",)) == []


class TestRPR102WorkerState:
    REGISTRY = (
        "CACHE = {}\n"
        "def remember(key, value):\n"
        "    CACHE[key] = value\n"
    )

    def test_mutated_global_in_worker_closure_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/registry.py": self.REGISTRY,
                "pkg/low/worker.py": "import pkg.low.registry\n",
            },
        )
        findings = check(root, ("RPR102",))
        assert rules_of(findings) == ["RPR102"]
        assert "CACHE" in findings[0].message
        assert findings[0].line == 1

    def test_unreachable_module_silent(self, tmp_path: Path):
        root = make_project(
            tmp_path, {"pkg/mid/registry.py": self.REGISTRY}
        )
        assert check(root, ("RPR102",)) == []

    def test_unmutated_global_silent(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/registry.py": "TABLE = {1: 2}\n",
                "pkg/low/worker.py": "import pkg.low.registry\n",
            },
        )
        assert check(root, ("RPR102",)) == []

    def test_local_shadow_silent(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/registry.py": (
                    "CACHE = {}\n"
                    "def scratch():\n"
                    "    CACHE = {}\n"
                    "    CACHE.update({1: 2})\n"
                    "    return CACHE\n"
                ),
                "pkg/low/worker.py": "import pkg.low.registry\n",
            },
        )
        assert check(root, ("RPR102",)) == []

    def test_global_statement_rebinding_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/registry.py": (
                    "HOOKS = []\n"
                    "def install(hook):\n"
                    "    global HOOKS\n"
                    "    HOOKS = HOOKS + [hook]\n"
                ),
                "pkg/low/worker.py": "import pkg.low.registry\n",
            },
        )
        assert rules_of(check(root, ("RPR102",))) == ["RPR102"]

    def test_cross_module_mutation_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/registry.py": "CACHE = {}\n",
                "pkg/low/worker.py": "import pkg.low.registry\n",
                "pkg/mid/writer.py": (
                    "import pkg.low.registry as registry\n"
                    "def poke(k, v):\n"
                    "    registry.CACHE[k] = v\n"
                ),
            },
        )
        findings = check(root, ("RPR102",))
        assert rules_of(findings) == ["RPR102"]
        # Anchored at the state's binding, not the (possibly many) writers.
        assert findings[0].path == "src/pkg/low/registry.py"

    def test_pragma_suppresses(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/registry.py": self.REGISTRY.replace(
                    "CACHE = {}", "CACHE = {}  # repro: ignore[RPR102]"
                ),
                "pkg/low/worker.py": "import pkg.low.registry\n",
            },
        )
        assert check(root, ("RPR102",)) == []


class TestRPR103Picklability:
    def test_generator_field_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/payload.py": (
                    "from dataclasses import dataclass\n"
                    "import numpy as np\n"
                    "@dataclass\n"
                    "class Box:\n"
                    "    rng: np.random.Generator\n"
                ),
            },
        )
        findings = check(root, ("RPR103",))
        assert rules_of(findings) == ["RPR103"]
        assert "live RNG stream" in findings[0].message

    def test_open_handle_field_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/payload.py": (
                    "from dataclasses import dataclass\n"
                    "from typing import TextIO\n"
                    "@dataclass\n"
                    "class Box:\n"
                    "    log: TextIO\n"
                ),
            },
        )
        assert any(
            "open file handle" in f.message for f in check(root, ("RPR103",))
        )

    def test_lambda_default_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/payload.py": (
                    "from typing import Callable\n"
                    "class Box:\n"
                    "    key: Callable = lambda self: 0\n"
                ),
            },
        )
        findings = check(root, ("RPR103",))
        assert any("defaults to a lambda" in f.message for f in findings)

    def test_lambda_default_factory_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/payload.py": (
                    "from dataclasses import dataclass, field\n"
                    "@dataclass\n"
                    "class Box:\n"
                    "    items: list = field(default_factory=lambda: [])\n"
                ),
            },
        )
        assert any(
            "default_factory" in f.message for f in check(root, ("RPR103",))
        )

    def test_transitive_closure_flagged(self, tmp_path: Path):
        # Box itself is clean; its field's type carries the hazard.
        root = make_project(
            tmp_path,
            {
                "pkg/low/inner.py": (
                    "from dataclasses import dataclass\n"
                    "import numpy as np\n"
                    "@dataclass\n"
                    "class Inner:\n"
                    "    rng: np.random.Generator\n"
                ),
                "pkg/low/payload.py": (
                    "from dataclasses import dataclass\n"
                    "from pkg.low.inner import Inner\n"
                    "@dataclass\n"
                    "class Box:\n"
                    "    inner: Inner\n"
                ),
            },
        )
        findings = check(root, ("RPR103",))
        assert rules_of(findings) == ["RPR103"]
        assert findings[0].path == "src/pkg/low/inner.py"

    def test_lambda_at_construction_site_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/build.py": (
                    "from pkg.low.payload import Box\n"
                    "def build():\n"
                    "    return Box(seed=lambda: 3)\n"
                ),
            },
        )
        findings = check(root, ("RPR103",))
        assert rules_of(findings) == ["RPR103"]
        assert "lambda passed into the Box payload" in findings[0].message

    def test_genexp_at_send_site_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/ship.py": (
                    "def ship(conn):\n"
                    "    conn.send(x for x in range(3))\n"
                ),
            },
        )
        findings = check(root, ("RPR103",))
        assert rules_of(findings) == ["RPR103"]
        assert "generator expression" in findings[0].message

    def test_clean_payload_silent(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/build.py": (
                    "from pkg.low.payload import Box\n"
                    "def build():\n"
                    "    return Box(seed=7)\n"
                ),
            },
        )
        assert check(root, ("RPR103",)) == []

    def test_missing_payload_type_reported(self, tmp_path: Path):
        root = make_project(
            tmp_path, {}, payloads='"pkg.low.payload.Ghost"'
        )
        findings = check(root, ("RPR103",))
        assert rules_of(findings) == ["RPR103"]
        assert findings[0].path == "pyproject.toml"
        assert "Ghost" in findings[0].message


class TestRPR104RngEscape:
    def test_producer_result_into_payload_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/build.py": (
                    "from pkg.low.payload import Box\n"
                    "from pkg.util.rng import as_rng\n"
                    "def build():\n"
                    "    rng = as_rng(7)\n"
                    "    return Box(seed=rng)\n"
                ),
            },
        )
        findings = check(root, ("RPR104",))
        assert rules_of(findings) == ["RPR104"]
        assert "live RNG stream escapes" in findings[0].message

    def test_direct_producer_call_argument_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/build.py": (
                    "from pkg.low.payload import Box\n"
                    "from numpy.random import default_rng\n"
                    "def build():\n"
                    "    return Box(seed=default_rng(3))\n"
                ),
            },
        )
        assert rules_of(check(root, ("RPR104",))) == ["RPR104"]

    def test_derive_into_send_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/ship.py": (
                    "def ship(conn, factory):\n"
                    "    stream = factory.derive('node')\n"
                    "    conn.send(stream)\n"
                ),
            },
        )
        assert rules_of(check(root, ("RPR104",))) == ["RPR104"]

    def test_seed_is_fine(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/build.py": (
                    "from pkg.low.payload import Box\n"
                    "def build(seed):\n"
                    "    return Box(seed=seed)\n"
                ),
            },
        )
        assert check(root, ("RPR104",)) == []

    def test_self_assign_inside_payload_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/payload.py": (
                    "from pkg.util.rng import as_rng\n"
                    "class Box:\n"
                    "    def __init__(self, seed):\n"
                    "        self.seed = seed\n"
                    "        self._rng = as_rng(seed)\n"
                ),
            },
        )
        findings = check(root, ("RPR104",))
        assert rules_of(findings) == ["RPR104"]
        assert "self._rng" in findings[0].message

    def test_tainted_local_self_assign_flagged(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/low/payload.py": (
                    "from pkg.util.rng import fallback_rng\n"
                    "class Box:\n"
                    "    def __init__(self):\n"
                    "        stream = fallback_rng()\n"
                    "        self.stream = stream\n"
                ),
            },
        )
        assert rules_of(check(root, ("RPR104",))) == ["RPR104"]

    def test_pragma_suppresses(self, tmp_path: Path):
        root = make_project(
            tmp_path,
            {
                "pkg/mid/build.py": (
                    "from pkg.low.payload import Box\n"
                    "from pkg.util.rng import as_rng\n"
                    "def build():\n"
                    "    rng = as_rng(7)\n"
                    "    return Box(seed=rng)  # repro: ignore[RPR104]\n"
                ),
            },
        )
        assert check(root, ("RPR104",)) == []


class TestCheckerCli:
    def test_clean_project_exits_zero(self, tmp_path: Path, monkeypatch):
        make_project(tmp_path, {})
        monkeypatch.chdir(tmp_path)
        assert cli_main(["check"]) == 0

    def test_violation_exits_one(self, tmp_path: Path, monkeypatch, capsys):
        make_project(tmp_path, {"pkg/low/bad.py": "import pkg.high\n"})
        monkeypatch.chdir(tmp_path)
        assert cli_main(["check"]) == 1
        out = capsys.readouterr().out
        assert "RPR101" in out and "src/pkg/low/bad.py:1" in out

    def test_github_format(self, tmp_path: Path, monkeypatch, capsys):
        make_project(tmp_path, {"pkg/low/bad.py": "import pkg.high\n"})
        monkeypatch.chdir(tmp_path)
        assert cli_main(["check", "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=src/pkg/low/bad.py,line=1" in out
        assert "title=repro-check RPR101" in out

    def test_json_format(self, tmp_path: Path, monkeypatch, capsys):
        make_project(tmp_path, {"pkg/low/bad.py": "import pkg.high\n"})
        monkeypatch.chdir(tmp_path)
        assert cli_main(["check", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        (finding,) = payload["findings"]
        assert finding["rule"] == "RPR101"
        assert set(payload["rules"]) == set(CHECK_RULE_CODES)
        assert payload["files_checked"] > 5

    def test_select_unknown_rule_is_usage_error(
        self, tmp_path: Path, monkeypatch
    ):
        make_project(tmp_path, {})
        monkeypatch.chdir(tmp_path)
        assert cli_main(["check", "--select", "RPR001"]) == 2

    def test_select_restricts_rules(self, tmp_path: Path, monkeypatch):
        make_project(tmp_path, {"pkg/low/bad.py": "import pkg.high\n"})
        monkeypatch.chdir(tmp_path)
        assert cli_main(["check", "--select", "RPR102"]) == 0

    def test_missing_contract_is_usage_error(
        self, tmp_path: Path, monkeypatch, capsys
    ):
        make_project(tmp_path, {})
        (tmp_path / "pyproject.toml").write_text("[tool.other]\nx = 1\n")
        monkeypatch.chdir(tmp_path)
        assert cli_main(["check"]) == 2
        assert "[tool.repro.check]" in capsys.readouterr().out

    def test_duplicate_unit_in_bands_rejected(self, tmp_path: Path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.check]\nlayers = [[\"a\"], [\"a\"]]\n"
        )
        with pytest.raises(CheckConfigError):
            load_check_config(pyproject)

    def test_baselined_finding_passes(self, tmp_path: Path, monkeypatch):
        root = make_project(
            tmp_path, {"pkg/low/bad.py": "import pkg.high\n"}
        )
        monkeypatch.chdir(tmp_path)
        findings = check(root)
        baseline = tmp_path / "repro-check-baseline.json"
        save_baseline(baseline, findings)
        assert cli_main(["check"]) == 0

    def test_update_baseline_keeps_moved_finding(
        self, tmp_path: Path, monkeypatch
    ):
        # The violating import drifts to another line; the fingerprint
        # (rule, path, snippet) still matches, so --update-baseline must
        # keep the entry rather than treating it as fixed + new.
        root = make_project(
            tmp_path, {"pkg/low/bad.py": "import pkg.high\n"}
        )
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "repro-check-baseline.json"
        save_baseline(baseline, check(root))
        (tmp_path / "src/pkg/low/bad.py").write_text(
            '"""Docstring pushes the import down."""\n\nimport pkg.high\n'
        )
        assert cli_main(["check", "--update-baseline"]) == 0
        assert len(load_baseline(baseline)) == 1
        assert cli_main(["check"]) == 0

    def test_stale_baseline_fails(self, tmp_path: Path, monkeypatch):
        root = make_project(
            tmp_path, {"pkg/low/bad.py": "import pkg.high\n"}
        )
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "repro-check-baseline.json"
        save_baseline(baseline, check(root))
        (tmp_path / "src/pkg/low/bad.py").write_text("")
        assert cli_main(["check"]) == 1

    def test_syntax_error_fails(self, tmp_path: Path, monkeypatch, capsys):
        make_project(tmp_path, {"pkg/low/broken.py": "def oops(:\n"})
        monkeypatch.chdir(tmp_path)
        assert cli_main(["check"]) == 1
        assert "parse failure" in capsys.readouterr().out


class TestRepoIsClean:
    def test_src_tree_sweeps_clean(self):
        # The acceptance gate, mirroring repro lint's: the shipped tree
        # satisfies the layering contract, keeps worker closures free of
        # mutated globals, and ships no unpicklable or RNG-carrying
        # payloads — with an *empty* baseline.
        repo = Path(__file__).resolve().parent.parent
        config = load_check_config(repo / "pyproject.toml")
        project = build_project(repo / "src", config.package, rel_root=repo)
        findings = run_project_rules(project, config, CHECK_RULE_CODES)
        assert len(project.modules) > 80
        assert findings == []

    def test_committed_baseline_is_empty(self):
        repo = Path(__file__).resolve().parent.parent
        baseline = repo / "repro-check-baseline.json"
        assert baseline.exists()
        assert load_baseline(baseline) == {}

    def test_contract_covers_every_unit(self):
        # No unit may dodge the contract by simply not being listed.
        repo = Path(__file__).resolve().parent.parent
        config = load_check_config(repo / "pyproject.toml")
        project = build_project(repo / "src", config.package, rel_root=repo)
        bands = config.band_of()
        units = {
            module.unit for module in project.modules.values() if module.unit
        }
        assert units <= set(bands)
