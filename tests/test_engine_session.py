"""Integration: the emulation engine and session drivers."""

import pytest

from repro.emulator.session import (
    SessionConfig,
    run_coded_session,
    run_unicast_session,
)
from repro.emulator.stats import throughput_gain
from repro.protocols.base import CodedBroadcastPlan
from repro.protocols.etx_routing import plan_etx_route
from repro.protocols.more import plan_more
from repro.protocols.omnc import plan_omnc
from repro.routing.node_selection import ForwarderSet
from repro.topology.random_network import chain_topology, diamond_topology
from repro.util.rng import RngFactory


def quick_config(**overrides):
    defaults = dict(
        blocks=8,
        block_size=256,
        max_seconds=120.0,
        target_generations=2,
    )
    defaults.update(overrides)
    return SessionConfig(**defaults)


def diamond_plan(capacity=2e4):
    net = diamond_topology(capacity=capacity)
    forwarders = ForwarderSet(
        source=0,
        destination=3,
        nodes=frozenset({0, 1, 2, 3}),
        etx_distance={0: 1 / 0.6 + 1 / 0.7, 1: 1 / 0.7, 2: 1 / 0.8, 3: 0.0},
        dag_links=((0, 1), (0, 2), (1, 3), (2, 3)),
    )
    rates = {0: 0.4 * capacity, 1: 0.3 * capacity, 2: 0.25 * capacity, 3: 0.0}
    plan = CodedBroadcastPlan(
        forwarders=forwarders, rates=rates, predicted_throughput=0.3 * capacity
    )
    return net, plan


class TestCodedSession:
    @pytest.mark.parametrize("fidelity", ["flow", "exact"])
    def test_diamond_session_decodes(self, fidelity):
        net, plan = diamond_plan()
        result = run_coded_session(
            net,
            plan,
            config=quick_config(coding_fidelity=fidelity),
            rng=RngFactory(5),
        )
        assert result.generations_decoded == 2
        assert result.throughput_bps > 0
        assert len(result.ack_times) == 2
        assert result.ack_times[0] < result.ack_times[1]

    def test_throughput_accounts_payload_only(self):
        net, plan = diamond_plan()
        config = quick_config()
        result = run_coded_session(net, plan, config=config, rng=RngFactory(6))
        expected = (
            result.generations_decoded
            * config.generation_bytes()
            / result.ack_times[-1]
        )
        assert result.throughput_bps == pytest.approx(expected)

    def test_deterministic_given_seed(self):
        net, plan = diamond_plan()
        a = run_coded_session(net, plan, config=quick_config(), rng=RngFactory(7))
        b = run_coded_session(net, plan, config=quick_config(), rng=RngFactory(7))
        assert a.throughput_bps == b.throughput_bps
        assert a.transmissions == b.transmissions

    def test_omnc_end_to_end_on_diamond(self):
        net = diamond_topology(capacity=2e4)
        plan = plan_omnc(net, 0, 3)
        result = run_coded_session(
            net, plan, config=quick_config(), rng=RngFactory(8)
        )
        assert result.generations_decoded == 2
        assert result.protocol == "omnc"

    def test_more_end_to_end_on_diamond(self):
        net = diamond_topology(capacity=2e4)
        plan = plan_more(net, 0, 3)
        result = run_coded_session(
            net, plan, config=quick_config(), rng=RngFactory(9)
        )
        assert result.generations_decoded == 2
        assert result.protocol == "more"

    def test_queue_statistics_collected(self):
        net, plan = diamond_plan()
        result = run_coded_session(net, plan, config=quick_config(), rng=RngFactory(10))
        assert set(result.average_queues) == set(result.participants)
        assert result.mean_queue() >= 0.0

    def test_interference_models_all_run(self):
        net, plan = diamond_plan()
        throughputs = {}
        for model in ("blanking", "capture", "conflict_free"):
            result = run_coded_session(
                net,
                plan,
                config=quick_config(interference=model),
                rng=RngFactory(11),
            )
            throughputs[model] = result.throughput_bps
            assert result.generations_decoded == 2
        # Conflict-free serializes the relays; the diamond's relays can
        # deliver concurrently under capture, so capture >= conflict_free
        # is the expected ordering here (not asserted strictly — both
        # must simply produce sane positive numbers).
        assert all(v > 0 for v in throughputs.values())

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SessionConfig(cbr_fraction=0.0)
        with pytest.raises(ValueError):
            SessionConfig(interference="psychic")
        with pytest.raises(ValueError):
            SessionConfig(coding_fidelity="approximate")
        with pytest.raises(ValueError):
            SessionConfig(max_seconds=0)

    def test_unsupported_plan_type(self):
        net, _ = diamond_plan()
        with pytest.raises(TypeError):
            run_coded_session(net, object(), config=quick_config())


class TestUnicastSession:
    def test_chain_delivers(self):
        net = chain_topology((0.8, 0.8, 0.8), capacity=2e4)
        plan = plan_etx_route(net, 0, 3)
        result = run_unicast_session(
            net, plan, config=quick_config(), rng=RngFactory(12)
        )
        assert result.packets_delivered > 0
        assert result.throughput_bps > 0
        assert result.protocol == "etx"

    def test_perfect_chain_throughput_near_pipeline_limit(self):
        net = chain_topology((1.0, 1.0, 1.0), capacity=2e4)
        plan = plan_etx_route(net, 0, 3)
        config = quick_config(max_seconds=300.0, target_generations=0)
        result = run_unicast_session(net, plan, config=config, rng=RngFactory(13))
        # All three hops share one collision domain (chain geometry):
        # at most 1/3 of slots move a packet end-to-end under blanking;
        # the CBR offered load caps it at capacity/2.
        assert result.throughput_bps > 0.15 * net.capacity * (
            config.block_size / config.unicast_packet_bytes()
        ) / 3

    def test_lossier_chain_is_slower(self):
        config = quick_config(max_seconds=300.0, target_generations=0)
        fast = run_unicast_session(
            chain_topology((0.9, 0.9), capacity=2e4),
            plan_etx_route(chain_topology((0.9, 0.9), capacity=2e4), 0, 2),
            config=config,
            rng=RngFactory(14),
        )
        slow = run_unicast_session(
            chain_topology((0.4, 0.4), capacity=2e4),
            plan_etx_route(chain_topology((0.4, 0.4), capacity=2e4), 0, 2),
            config=config,
            rng=RngFactory(14),
        )
        assert slow.throughput_bps < fast.throughput_bps

    def test_gain_metric(self):
        net, plan = diamond_plan()
        coded = run_coded_session(net, plan, config=quick_config(), rng=RngFactory(15))
        etx = run_unicast_session(
            net, plan_etx_route(net, 0, 3), config=quick_config(), rng=RngFactory(15)
        )
        gain = throughput_gain(coded, etx)
        assert gain > 0
