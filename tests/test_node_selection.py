"""Node selection: distance-decreasing forwarder sets and their DAGs."""

import pytest

from repro.routing.node_selection import (
    NodeSelectionError,
    select_forwarders,
)
from repro.topology.random_network import (
    chain_topology,
    diamond_topology,
    fig1_sample_topology,
    random_network,
)
from repro.util.rng import RngFactory


class TestBasicSelection:
    def test_diamond_selects_both_relays(self):
        net = diamond_topology()
        result = select_forwarders(net, 0, 3)
        assert result.nodes == frozenset({0, 1, 2, 3})
        assert set(result.dag_links) == {(0, 1), (0, 2), (1, 3), (2, 3)}

    def test_chain_selects_whole_path(self):
        net = chain_topology((0.6, 0.6, 0.6))
        result = select_forwarders(net, 0, 3)
        assert result.nodes == frozenset({0, 1, 2, 3})

    def test_source_and_destination_always_included(self):
        net = fig1_sample_topology()
        result = select_forwarders(net, 0, 5)
        assert 0 in result.nodes and 5 in result.nodes
        assert result.relay_count == len(result.nodes) - 2

    def test_same_endpoints_rejected(self):
        net = diamond_topology()
        with pytest.raises(NodeSelectionError):
            select_forwarders(net, 1, 1)

    def test_unknown_node_rejected(self):
        net = diamond_topology()
        with pytest.raises(NodeSelectionError):
            select_forwarders(net, 0, 99)

    def test_unreachable_destination_rejected(self):
        net = chain_topology((0.5, 0.5))
        # Links only point forward; node 0 is unreachable from 2.
        with pytest.raises(NodeSelectionError):
            select_forwarders(net, 2, 0)


class TestDagProperties:
    def test_links_strictly_decrease_distance(self):
        net = random_network(100, rng=RngFactory(4).derive("t"))
        result = select_forwarders(net, 3, 77)
        for i, j in result.dag_links:
            assert result.etx_distance[j] < result.etx_distance[i]

    def test_every_selected_node_reaches_destination(self):
        net = random_network(100, rng=RngFactory(4).derive("t"))
        result = select_forwarders(net, 3, 77)
        # Walk greedily downhill from each node; must reach destination.
        for node in result.nodes:
            current = node
            for _ in range(len(result.nodes)):
                if current == result.destination:
                    break
                downstream = result.downstream(current)
                assert downstream, f"node {current} has no way forward"
                current = min(downstream, key=lambda j: result.etx_distance[j])
            assert current == result.destination

    def test_forwarders_closer_than_source(self):
        net = random_network(100, rng=RngFactory(4).derive("t"))
        result = select_forwarders(net, 3, 77)
        source_distance = result.etx_distance[result.source]
        for node in result.nodes:
            if node != result.source:
                assert result.etx_distance[node] < source_distance

    def test_upstream_downstream_consistency(self):
        net = fig1_sample_topology()
        result = select_forwarders(net, 0, 5)
        for i, j in result.dag_links:
            assert j in result.downstream(i)
            assert i in result.upstream(j)

    def test_ordered_by_distance(self):
        net = fig1_sample_topology()
        result = select_forwarders(net, 0, 5)
        ordered = result.ordered_by_distance()
        assert ordered[0] == result.destination
        distances = [result.etx_distance[n] for n in ordered]
        assert distances == sorted(distances)

    def test_distance_matches_shortest_path(self):
        net = fig1_sample_topology()
        result = select_forwarders(net, 0, 5)
        # ETX distance of node 3 to destination 5: direct link 0.9.
        assert result.etx_distance[3] == pytest.approx(1 / 0.9)


def _reachable_pair(net):
    """Find a (source, destination) pair that node selection accepts."""
    for source in range(net.node_count):
        for destination in range(net.node_count - 1, 0, -1):
            if source == destination:
                continue
            try:
                select_forwarders(net, source, destination)
            except NodeSelectionError:
                continue
            return source, destination
    raise AssertionError("no reachable pair in test network")


class TestMaxDistanceFactor:
    def test_cap_prunes_far_forwarders(self):
        net = random_network(100, rng=RngFactory(8).derive("t"))
        source, destination = _reachable_pair(net)
        unrestricted = select_forwarders(net, source, destination)
        try:
            capped = select_forwarders(
                net, source, destination, max_distance_factor=0.8
            )
        except NodeSelectionError:
            return  # aggressive caps may sever the route entirely
        assert capped.nodes <= unrestricted.nodes

    def test_measured_weights_supported(self):
        net = diamond_topology()
        weights = {(i, j): 1.0 / p for i, j, p in net.links()}
        result = select_forwarders(net, 0, 3, weights=weights)
        assert result.nodes == frozenset({0, 1, 2, 3})
