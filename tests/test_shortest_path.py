"""Dijkstra and the distributed Bellman-Ford agree and behave."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.etx import etx_weights
from repro.routing.shortest_path import (
    DistributedBellmanFord,
    dijkstra,
    dijkstra_to_destination,
)
from repro.topology.random_network import random_network
from repro.util.rng import RngFactory


def small_weights():
    # 0 -> 1 -> 3 cheap; 0 -> 2 -> 3 expensive; 0 -> 3 direct medium.
    return {
        (0, 1): 1.0,
        (1, 3): 1.0,
        (0, 2): 2.0,
        (2, 3): 3.0,
        (0, 3): 2.5,
    }


class TestDijkstra:
    def test_shortest_path_found(self):
        result = dijkstra(range(4), small_weights(), 0)
        assert result.distance[3] == pytest.approx(2.0)
        assert result.path_to(3) == (0, 1, 3)
        assert result.hop_count(3) == 2

    def test_unreachable_node_absent(self):
        result = dijkstra(range(5), small_weights(), 0)
        assert 4 not in result.distance
        assert result.path_to(4) is None
        assert result.hop_count(4) is None

    def test_source_distance_zero(self):
        result = dijkstra(range(4), small_weights(), 0)
        assert result.distance[0] == 0.0
        assert result.path_to(0) == (0,)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            dijkstra(range(2), {(0, 1): -1.0}, 0)

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            dijkstra(range(2), {}, 7)

    def test_zero_weights_allowed(self):
        result = dijkstra(range(3), {(0, 1): 0.0, (1, 2): 0.0}, 0)
        assert result.distance[2] == 0.0


class TestDijkstraToDestination:
    def test_distances_to_destination(self):
        result = dijkstra_to_destination(range(4), small_weights(), 3)
        assert result.distance[0] == pytest.approx(2.0)
        assert result.distance[1] == pytest.approx(1.0)
        assert result.distance[2] == pytest.approx(3.0)

    def test_predecessor_is_next_hop(self):
        result = dijkstra_to_destination(range(4), small_weights(), 3)
        assert result.predecessor[0] == 1  # 0's next hop toward 3


class TestDistributedBellmanFord:
    def test_matches_dijkstra_on_random_network(self):
        net = random_network(80, rng=RngFactory(1).derive("t"))
        weights = etx_weights(net)
        destination = 10
        reference = dijkstra_to_destination(net.nodes(), weights, destination)
        bf = DistributedBellmanFord(net.nodes(), weights, destination).run()
        assert bf.converged
        for node, dist in reference.distance.items():
            assert bf.distance(node) == pytest.approx(dist)

    def test_round_count_bounded_by_nodes(self):
        net = random_network(50, rng=RngFactory(2).derive("t"))
        bf = DistributedBellmanFord(net.nodes(), etx_weights(net), 0).run()
        assert bf.rounds <= net.node_count

    def test_path_from_follows_next_hops(self):
        bf = DistributedBellmanFord(range(4), small_weights(), 3).run()
        assert bf.path_from(0) == (0, 1, 3)

    def test_unreachable_gives_none(self):
        bf = DistributedBellmanFord(range(5), small_weights(), 3).run()
        assert bf.path_from(4) is None
        assert bf.distance(4) == float("inf")

    def test_distances_dict_excludes_unreachable(self):
        bf = DistributedBellmanFord(range(5), small_weights(), 3).run()
        assert 4 not in bf.distances()

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            DistributedBellmanFord(range(2), {(0, 1): -0.5}, 1)

    def test_unknown_destination_rejected(self):
        with pytest.raises(ValueError):
            DistributedBellmanFord(range(2), {}, 9)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_agreement_property(self, seed):
        net = random_network(30, rng=RngFactory(seed).derive("t"))
        weights = etx_weights(net)
        reference = dijkstra_to_destination(net.nodes(), weights, 0)
        bf = DistributedBellmanFord(net.nodes(), weights, 0).run()
        for node, dist in reference.distance.items():
            assert bf.distance(node) == pytest.approx(dist)
