"""Tests for the benchmark regression gate (benchmarks/regression_check.py).

The module lives outside ``src`` (it is a CI tool, not library code), so
it is loaded by file path here.
"""

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.coding.gf256 import GF256

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_gate():
    spec = importlib.util.spec_from_file_location(
        "regression_check", REPO_ROOT / "benchmarks" / "regression_check.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("regression_check", module)
    spec.loader.exec_module(module)
    return module


gate = _load_gate()


def _document(**normalized):
    """A minimal result document with the given normalized metrics."""
    return {
        "schema": 1,
        "mode": "quick",
        "calibration_mbps": 100.0,
        "metrics": {
            name: {"raw": value * 100.0, "normalized": value, "unit": "MB/s"}
            for name, value in normalized.items()
        },
    }


# -------------------------------------------------------------------- compare


def test_compare_passes_identical_documents():
    document = _document(codec=1.0, emulator=2.0)
    assert gate.compare(document, copy.deepcopy(document)) == []


def test_compare_flags_only_drops_beyond_tolerance():
    baseline = _document(a=1.0, b=1.0, c=1.0)
    current = _document(a=0.90, b=0.80, c=1.50)  # -10%, -20%, +50%
    regressions = gate.compare(current, baseline, tolerance=0.15)
    assert [r.name for r in regressions] == ["b"]
    assert regressions[0].change == pytest.approx(-0.20)
    assert "b:" in regressions[0].describe()


def test_compare_ignores_metrics_missing_on_either_side():
    baseline = _document(existing=1.0, removed=1.0)
    current = _document(existing=1.0, added=0.01)
    assert gate.compare(current, baseline) == []


def test_compare_skips_advisory_metrics_unless_strict():
    baseline = _document(stable=1.0, noisy=1.0)
    current = _document(stable=1.0, noisy=0.5)
    current["metrics"]["noisy"]["advisory"] = True
    assert gate.compare(current, baseline) == []
    strict = gate.compare(current, baseline, strict=True)
    assert [r.name for r in strict] == ["noisy"]


def test_collect_marks_only_interpreter_bound_probes_advisory():
    """The hard gate must keep covering the codec paths."""
    quick = json.loads(
        (REPO_ROOT / "benchmarks" / "BENCH_baseline.json").read_text()
    )["modes"]["quick"]
    advisory = {n for n, r in quick["metrics"].items() if r.get("advisory")}
    assert advisory == {
        "adaptive_replan",
        "campaign_parallel_speedup",
        "codec_backend_speedup",
        "emulator_kslots_per_sec",
        "emulator_slot_loop",
        "optimizer_iters_per_sec",
        "sharded_slot_loop",
    }
    hard = set(quick["metrics"]) - advisory
    assert {
        "codec_pipeline_mbps",
        "codec_decode_batch_mbps",
        "codec_encode_mbps",
    } <= hard


def test_compare_rejects_nonpositive_tolerance():
    document = _document(a=1.0)
    with pytest.raises(ValueError):
        gate.compare(document, document, tolerance=0.0)


# ----------------------------------------------------------- baseline storage


def test_baseline_write_load_round_trip(tmp_path):
    path = tmp_path / "BENCH_baseline.json"
    quick = _document(a=1.0)
    gate.write_baseline(path, quick)
    full = dict(_document(a=2.0), mode="full")
    gate.write_baseline(path, full)  # merges, does not clobber
    assert gate.load_baseline(path, "quick")["metrics"]["a"]["normalized"] == 1.0
    assert gate.load_baseline(path, "full")["metrics"]["a"]["normalized"] == 2.0
    assert gate.load_baseline(path, "missing") is None
    assert gate.load_baseline(tmp_path / "absent.json", "quick") is None


def test_committed_baseline_has_both_modes_and_all_probes():
    document = json.loads((REPO_ROOT / "benchmarks" / "BENCH_baseline.json").read_text())
    assert document["schema"] == gate.SCHEMA_VERSION
    expected = {
        "adaptive_replan",
        "campaign_parallel_speedup",
        "codec_backend_speedup",
        "codec_decode_batch_mbps",
        "codec_encode_mbps",
        "codec_pipeline_mbps",
        "emulator_kslots_per_sec",
        "emulator_slot_loop",
        "optimizer_iters_per_sec",
        "sharded_slot_loop",
    }
    for mode in ("quick", "full"):
        section = document["modes"][mode]
        assert set(section["metrics"]) == expected
        for record in section["metrics"].values():
            assert record["normalized"] > 0
        # The per-backend sweep ships in the artifact and the baseline:
        # the reference backend is always present, and the backend that
        # served the codec probes is one of the measured entries.
        assert "numpy" in section["backends"]
        assert section["codec_backend"] in section["backends"]


# --------------------------------------------------------------------- probes


def test_calibration_and_codec_probe_are_positive():
    calibration = gate.calibrate(size=1 << 16, inner=2, rounds=1)
    assert calibration > 0
    probe = gate.probe_codec_encode(blocks=8, block_size=64, inner=2, rounds=1)
    assert probe.name == "codec_encode_mbps"
    assert probe.raw > 0
    assert probe.normalized(calibration) == pytest.approx(probe.raw / calibration)


def test_synthetic_codec_slowdown_trips_the_gate(monkeypatch):
    """A ~20% slowdown injected into GF(2^8) encode must be caught."""

    def probe(inner=6, rounds=3):
        return gate.probe_codec_encode(
            blocks=40, block_size=1024, inner=inner, rounds=rounds
        )

    fast = probe()
    real_matmul = GF256.matmul  # staticmethod: class access yields the function

    def slow_matmul(a, b):
        result = real_matmul(a, b)
        # Burn ~25-50% of the kernel's own cost in redundant work.
        for _ in range(2):
            real_matmul(a[: max(1, a.shape[0] // 2)], b)
        return result

    monkeypatch.setattr(GF256, "matmul", staticmethod(slow_matmul))
    slow = probe()
    monkeypatch.undo()

    calibration = 100.0  # shared calibration: slowdown hits only the probe
    baseline = _document(codec_encode_mbps=fast.normalized(calibration))
    current = _document(codec_encode_mbps=slow.normalized(calibration))
    slowdown = slow.raw / fast.raw - 1.0
    assert slowdown < -0.15, f"injected slowdown too small: {slowdown:+.1%}"
    regressions = gate.compare(current, baseline, tolerance=0.15)
    assert [r.name for r in regressions] == ["codec_encode_mbps"]


# ----------------------------------------------------------------------- main


def test_main_exit_codes(tmp_path, monkeypatch):
    """0 = ok, 1 = regression, 2 = missing baseline — without real probes."""
    healthy = _document(codec_encode_mbps=1.0)

    def fake_collect(mode):
        return dict(copy.deepcopy(healthy), mode=mode)

    monkeypatch.setattr(gate, "collect", fake_collect)
    baseline_path = tmp_path / "BENCH_baseline.json"
    output_path = tmp_path / "BENCH_local.json"
    common = [
        "--quick",
        "--baseline",
        str(baseline_path),
        "--output",
        str(output_path),
    ]

    assert gate.main(common) == 2  # no baseline yet
    assert gate.main(common + ["--write-baseline"]) == 0
    assert gate.main(common) == 0  # identical run passes
    assert json.loads(output_path.read_text())["mode"] == "quick"

    degraded = _document(codec_encode_mbps=0.5)
    monkeypatch.setattr(
        gate, "collect", lambda mode: dict(copy.deepcopy(degraded), mode=mode)
    )
    assert gate.main(common) == 1  # 50% drop trips the gate
