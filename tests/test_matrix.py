"""GF(2^8) matrix algebra: RREF, rank, inversion, solving."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import matrix as gfm
from repro.coding.gf256 import GF256


def random_matrix(rows, cols, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (rows, cols), dtype=np.uint8)


class TestRref:
    def test_rref_of_identity_is_identity(self):
        identity = gfm.identity(4)
        reduced, pivots = gfm.rref(identity)
        assert np.array_equal(reduced, identity)
        assert pivots == [0, 1, 2, 3]

    def test_rref_is_idempotent(self):
        m = random_matrix(5, 8, 0)
        once, _ = gfm.rref(m)
        twice, _ = gfm.rref(once)
        assert np.array_equal(once, twice)

    def test_rref_output_satisfies_is_rref(self):
        for seed in range(5):
            m = random_matrix(4, 6, seed)
            reduced, _ = gfm.rref(m)
            assert gfm.is_rref(reduced)

    def test_rref_does_not_modify_input(self):
        m = random_matrix(3, 3, 1)
        copy = m.copy()
        gfm.rref(m)
        assert np.array_equal(m, copy)

    def test_rref_zero_matrix(self):
        zero = np.zeros((3, 4), dtype=np.uint8)
        reduced, pivots = gfm.rref(zero)
        assert np.array_equal(reduced, zero)
        assert pivots == []

    def test_rref_rejects_1d(self):
        with pytest.raises(ValueError):
            gfm.rref(np.zeros(3, dtype=np.uint8))


class TestRank:
    def test_rank_of_identity(self):
        assert gfm.rank(gfm.identity(7)) == 7

    def test_rank_of_duplicated_rows(self):
        row = random_matrix(1, 6, 2)
        stacked = np.vstack([row, row, row])
        assert gfm.rank(stacked) == 1

    def test_rank_invariant_under_row_scaling(self):
        m = random_matrix(4, 4, 3)
        scaled = m.copy()
        scaled[0] = GF256.scale_row(scaled[0], 0x35)
        assert gfm.rank(m) == gfm.rank(scaled)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10)
    def test_random_square_matrices_usually_full_rank(self, n):
        m = gfm.random_matrix(n, n, np.random.default_rng(n), full_rank=True)
        assert gfm.is_full_rank(m)

    def test_rank_bounded_by_min_dimension(self):
        m = random_matrix(3, 9, 4)
        assert gfm.rank(m) <= 3


class TestInvert:
    def test_invert_roundtrip(self):
        for seed in range(4):
            m = gfm.random_matrix(5, 5, np.random.default_rng(seed), full_rank=True)
            inv = gfm.invert(m)
            assert np.array_equal(GF256.matmul(m, inv), gfm.identity(5))
            assert np.array_equal(GF256.matmul(inv, m), gfm.identity(5))

    def test_invert_singular_raises(self):
        singular = np.zeros((3, 3), dtype=np.uint8)
        singular[0, 0] = 1
        with pytest.raises(ValueError, match="singular"):
            gfm.invert(singular)

    def test_invert_non_square_raises(self):
        with pytest.raises(ValueError, match="square"):
            gfm.invert(np.zeros((2, 3), dtype=np.uint8))

    def test_invert_identity(self):
        assert np.array_equal(gfm.invert(gfm.identity(6)), gfm.identity(6))


class TestSolve:
    def test_solve_recovers_generation(self):
        rng = np.random.default_rng(9)
        original = rng.integers(0, 256, (6, 20), dtype=np.uint8)
        coefficients = gfm.random_matrix(6, 6, rng, full_rank=True)
        coded = GF256.matmul(coefficients, original)
        recovered = gfm.solve(coefficients, coded)
        assert np.array_equal(recovered, original)

    def test_solve_row_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            gfm.solve(
                np.zeros((3, 3), dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8)
            )


class TestHelpers:
    def test_identity_negative_raises(self):
        with pytest.raises(ValueError):
            gfm.identity(-1)

    def test_random_matrix_negative_dims(self):
        with pytest.raises(ValueError):
            gfm.random_matrix(-1, 2, np.random.default_rng(0))

    def test_is_rref_detects_unnormalized_pivot(self):
        m = np.array([[2, 0], [0, 1]], dtype=np.uint8)
        assert not gfm.is_rref(m)

    def test_is_rref_detects_uncleared_column(self):
        m = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        assert not gfm.is_rref(m)

    def test_is_rref_detects_bad_pivot_order(self):
        m = np.array([[0, 1, 0], [1, 0, 0]], dtype=np.uint8)
        assert not gfm.is_rref(m)

    def test_is_rref_accepts_zero_rows_at_bottom(self):
        m = np.array([[1, 0, 5], [0, 1, 7], [0, 0, 0]], dtype=np.uint8)
        assert gfm.is_rref(m)

    def test_is_rref_rejects_zero_row_in_middle(self):
        m = np.array([[1, 0, 5], [0, 0, 0], [0, 1, 7]], dtype=np.uint8)
        assert not gfm.is_rref(m)
