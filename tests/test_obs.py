"""Tests for the observability subsystem (repro.obs)."""

import numpy as np
import pytest

from repro import obs
from repro.coding.decoder import ProgressiveDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.generation import GenerationParams, random_generation
from repro.coding.gf256 import GF256
from repro.optimization.problem import session_graph_from_network
from repro.optimization.rate_control import RateControlAlgorithm
from repro.topology.random_network import fig1_sample_topology


# ---------------------------------------------------------------- instruments


def test_counter_accumulates_and_rejects_negative():
    registry = obs.MetricsRegistry()
    counter = registry.counter("pkts", "packets")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_relative_updates():
    gauge = obs.MetricsRegistry().gauge("depth")
    gauge.set(3.0)
    gauge.inc(-1.0)
    assert gauge.value == 2.0
    assert gauge.updates == 2


def test_histogram_percentiles_exact_on_known_data():
    histogram = obs.MetricsRegistry().histogram("h")
    for value in range(1, 101):  # 1..100
        histogram.observe(value)
    assert histogram.count == 100
    assert histogram.mean == pytest.approx(50.5)
    assert histogram.minimum == 1
    assert histogram.maximum == 100
    assert histogram.percentile(0) == 1
    assert histogram.percentile(100) == 100
    assert histogram.percentile(50) == pytest.approx(50.5)
    assert histogram.percentile(90) == pytest.approx(90.1)


def test_histogram_reservoir_is_bounded_but_totals_exact():
    histogram = obs.MetricsRegistry().histogram("h", max_samples=10)
    for value in range(100):
        histogram.observe(value)
    assert histogram.count == 100
    assert histogram.sum == sum(range(100))
    assert len(histogram.samples()) == 10
    # The ring retains the most recent window.
    assert sorted(histogram.samples()) == list(range(90, 100))


def test_histogram_percentile_validates_input():
    histogram = obs.MetricsRegistry().histogram("h")
    with pytest.raises(ValueError):
        histogram.percentile(50)  # empty
    histogram.observe(1.0)
    with pytest.raises(ValueError):
        histogram.percentile(101)


# ------------------------------------------------------------------- registry


def test_registry_get_or_create_shares_instruments():
    registry = obs.MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    with pytest.raises(TypeError):
        registry.gauge("a")  # name already taken by a counter


def test_registry_attach_prefixes_and_detach_removes():
    registry = obs.MetricsRegistry()
    scope = registry.attach("decoder")
    scope.counter("innovative").inc()
    scope.gauge("rank").set(3)
    registry.counter("emulator.slots").inc()
    assert "decoder.innovative" in registry
    assert registry.value("decoder.rank") == 3
    # Scoped and unscoped views resolve to the same instrument.
    assert scope.counter("innovative") is registry.counter("decoder.innovative")
    removed = registry.detach("decoder")
    assert removed == 2
    assert "decoder.innovative" not in registry
    assert "emulator.slots" in registry  # untouched


def test_disabled_registry_hands_out_shared_null_instruments():
    registry = obs.MetricsRegistry(enabled=False)
    counter = registry.counter("x")
    assert counter is obs.NULL_COUNTER
    assert not counter.enabled
    counter.inc(100)
    assert counter.value == 0
    assert registry.histogram("h") is obs.NULL_HISTOGRAM
    assert registry.gauge("g") is obs.NULL_GAUGE
    assert len(registry) == 0
    assert registry.snapshot() == {}


def test_registry_snapshot_prefix_filter_and_json(tmp_path):
    registry = obs.MetricsRegistry()
    registry.counter("a.one").inc()
    registry.counter("b.two").inc(2)
    assert list(registry.snapshot(prefix="a.")) == ["a.one"]
    path = tmp_path / "metrics.json"
    registry.to_json(path)
    assert path.exists()
    import json

    snapshot = json.loads(path.read_text())
    assert snapshot["b.two"]["value"] == 2


# ---------------------------------------------------------- global collection


def test_collecting_enables_then_restores_disabled_global():
    assert not obs.get_registry().enabled
    with obs.collecting() as registry:
        assert obs.get_registry() is registry
        assert registry.enabled
    assert not obs.get_registry().enabled


def test_collecting_meters_codec_bytes_and_unhooks():
    a = np.ones((4, 4), dtype=np.uint8)
    b = np.ones((4, 16), dtype=np.uint8)
    with obs.collecting() as registry:
        GF256.matmul(a, b)
        assert registry.value("codec.bytes_processed") == 64
    # Hook removed: further codec work does not mutate the old registry.
    GF256.matmul(a, b)
    assert registry.value("codec.bytes_processed") == 64


def test_resolve_prefers_explicit_registry():
    explicit = obs.MetricsRegistry()
    assert obs.resolve(explicit) is explicit
    assert obs.resolve(None) is obs.get_registry()


# --------------------------------------------------------------------- tracer


def test_tracer_emit_filter_series_and_summary():
    tracer = obs.EventTracer()
    tracer.emit("iteration", t=0, theta=1.0)
    tracer.emit("iteration", t=1, theta=0.5)
    tracer.emit("ack", generation=0)
    assert len(tracer) == 3
    assert tracer.summary() == {"iteration": 2, "ack": 1}
    assert tracer.series("iteration", "theta") == [1.0, 0.5]
    assert tracer.last("ack").fields["generation"] == 0
    assert tracer.last("missing") is None


def test_tracer_bounded_capacity_counts_drops():
    tracer = obs.EventTracer(capacity=5)
    for index in range(8):
        tracer.emit("e", i=index)
    assert len(tracer) == 5
    assert tracer.dropped == 3
    retained = [record.fields["i"] for record in tracer.records()]
    assert retained == [3, 4, 5, 6, 7]
    # Sequence numbers are global, not reset by eviction.
    assert next(tracer.records()).seq == 3


def test_tracer_jsonl_round_trip(tmp_path):
    tracer = obs.EventTracer()
    tracer.emit("rate_control.iteration", t=0, lambda_max=0.25, note="x")
    tracer.emit("ack", generation=2)
    path = tmp_path / "trace.jsonl"
    assert tracer.to_jsonl(path) == 2
    loaded = obs.EventTracer.read_jsonl(path)
    assert len(loaded) == 2
    assert loaded[0].kind == "rate_control.iteration"
    assert loaded[0].fields == {"t": 0, "lambda_max": 0.25, "note": "x"}
    assert loaded[1].seq == 1


def test_null_tracer_absorbs_everything():
    before = len(obs.NULL_TRACER)
    obs.NULL_TRACER.emit("anything", x=1)
    assert len(obs.NULL_TRACER) == before == 0


# ------------------------------------------------------- component integration


def _decode_generation(blocks, block_size, registry):
    rng = np.random.default_rng(42)
    params = GenerationParams(blocks=blocks, block_size=block_size)
    generation = random_generation(0, params, rng)
    encoder = SourceEncoder(1, generation, rng)
    decoder = ProgressiveDecoder(blocks, block_size, registry=registry)
    while not decoder.is_complete:
        decoder.add_packet(encoder.next_packet())
    return decoder


def test_decoder_rank_metric_reaches_n_exactly_on_completion():
    registry = obs.MetricsRegistry()
    blocks = 12
    decoder = _decode_generation(blocks, 64, registry)
    assert decoder.is_complete
    rank_gauge = registry.get("decoder.rank")
    assert rank_gauge.value == blocks  # exactly n, not more
    assert rank_gauge.updates == blocks  # one update per innovative packet
    assert registry.value("decoder.innovative") == blocks
    assert (
        registry.value("decoder.redundant")
        == decoder.received - blocks
    )
    latency = registry.get("decoder.packets_to_decode")
    assert latency.count == 1
    assert latency.minimum == decoder.received


def test_decoder_metrics_disabled_by_default_costs_nothing():
    decoder = _decode_generation(6, 32, None)
    assert decoder.is_complete
    # Global registry is disabled: nothing was recorded anywhere.
    assert len(obs.get_registry()) == 0


def test_rate_control_publishes_iteration_metrics_and_traces():
    network = fig1_sample_topology(capacity=1e5)
    graph = session_graph_from_network(network, 0, 5)
    registry = obs.MetricsRegistry()
    tracer = obs.EventTracer()
    result = RateControlAlgorithm(graph, registry=registry, tracer=tracer).run()
    assert registry.value("optimizer.iterations") == result.iterations
    records = list(tracer.records(kind="rate_control.iteration"))
    assert len(records) == result.iterations
    lambda_series = tracer.series("rate_control.iteration", "lambda_max")
    assert len(lambda_series) == result.iterations
    assert all(value >= 0.0 for value in lambda_series)
    residuals = registry.get("optimizer.primal_residual")
    assert residuals.count == result.iterations
    # Primal recovery drives the constraint violation toward zero.
    assert residuals.samples()[-1] <= residuals.maximum


def test_engine_counters_via_global_collection():
    from repro.emulator.session import SessionConfig, run_coded_session
    from repro.protocols.more import plan_more
    from repro.routing.node_selection import NodeSelectionError
    from repro.topology.phy import lossy_phy
    from repro.topology.random_network import random_network
    from repro.util.rng import RngFactory

    rng = RngFactory(7)
    network = random_network(
        30, phy=lossy_phy(rng=rng.derive("phy")), rng=rng.derive("topology")
    )
    plan = None
    for source in range(network.node_count):
        for destination in range(network.node_count - 1, -1, -1):
            if source == destination:
                continue
            try:
                plan = plan_more(network, source, destination)
                break
            except NodeSelectionError:
                continue
        if plan is not None:
            break
    assert plan is not None, "no feasible MORE session on the test network"
    config = SessionConfig(max_seconds=10.0, target_generations=1)
    with obs.collecting() as registry:
        result = run_coded_session(network, plan, config=config, rng=rng.spawn("s"))
    slots = registry.value("emulator.slots")
    assert slots > 0
    assert registry.value("emulator.transmissions") >= registry.value(
        "emulator.deliveries"
    ) * 0  # both present
    assert registry.get("mac.granted_per_slot").count == slots
    assert registry.get("emulator.virtual_time").value == pytest.approx(
        result.duration
    )
