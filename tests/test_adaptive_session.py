"""Live control plane: hot-swap machinery and the adaptive runner.

The tentpole invariants:

* a calm scenario under an oblivious policy is *bit-identical* to the
  static session drivers (the adaptive layer adds nothing when nothing
  happens);
* a fixed seed plus a fixed scenario reproduces the exact same run;
* re-plans charge overhead, survive planning failures, and appear in
  traces and epoch records.
"""

import pytest

from repro.emulator.channel import LossyBroadcastChannel
from repro.emulator.engine import EmulationEngine
from repro.emulator.node import (
    FlowDestinationRuntime,
    FlowRelayRuntime,
    FlowSourceRuntime,
    UnicastRuntime,
)
from repro.emulator.session import (
    SessionConfig,
    build_plan_runtimes,
    run_coded_session,
    run_unicast_session,
)
from repro.emulator.trace import SessionTracer
from repro.protocols.adaptive import make_planner
from repro.protocols.etx_routing import plan_etx_route
from repro.protocols.more import plan_more
from repro.protocols.omnc import plan_omnc
from repro.routing.node_selection import NodeSelectionError
from repro.scenario import (
    ScenarioEvent,
    ScenarioSpec,
    builtin_scenario,
    make_policy,
    run_adaptive_session,
)
from repro.topology.phy import lossy_phy
from repro.topology.random_network import random_network
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def net_pair():
    """A 30-node lossy network plus a session pair with real relays."""
    rng = RngFactory(11)
    network = random_network(
        30, phy=lossy_phy(rng=rng.derive("phy")), rng=rng.derive("topology")
    )
    for source in range(network.node_count):
        for destination in range(network.node_count - 1, -1, -1):
            if source == destination:
                continue
            try:
                plan = plan_more(network, source, destination)
            except NodeSelectionError:
                continue
            if len(plan.forwarders.nodes) >= 4:
                return network, source, destination
    raise RuntimeError("no feasible session on the test network")


class TestApplyPlan:
    def test_source_rate_swap(self):
        source = FlowSourceRuntime(0, 1, 8, 4000.0, 1000)
        assert source.demand_rate(1.0) == pytest.approx(4.0)
        source.apply_plan(rate_bps=2000.0)
        assert source.demand_rate(1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError, match=">= 0"):
            source.apply_plan(rate_bps=-1.0)

    def test_source_swap_keeps_queue(self):
        source = FlowSourceRuntime(0, 1, 8, 4000.0, 1000)
        source.on_slot(1.0)  # generates 4 packets
        queued = source.backlog()
        assert queued > 0
        source.apply_plan(rate_bps=0.0)
        assert source.backlog() == queued

    def test_relay_validation_and_mode_switch(self):
        relay = FlowRelayRuntime(1, 1, 8, 1000, mode="rate", rate_bps=1000.0)
        with pytest.raises(ValueError, match="unknown relay mode"):
            relay.apply_plan(mode="chaotic")
        with pytest.raises(ValueError, match="tx_credit"):
            relay.apply_plan(tx_credit=-0.5)
        with pytest.raises(ValueError, match="rate_bps"):
            relay.apply_plan(rate_bps=-1.0)
        relay.apply_plan(mode="credit", tx_credit=1.5, upstream=(0,))
        relay.apply_plan(mode="rate", rate_bps=500.0)

    def test_relay_swap_keeps_information(self):
        relay = FlowRelayRuntime(1, 1, 8, 1000, mode="rate", rate_bps=1000.0)
        relay.information = 3.0
        relay.apply_plan(rate_bps=2000.0)
        assert relay.information == 3.0

    def test_unicast_route_swap(self):
        node = UnicastRuntime(0, 1, rate_bps=1000.0, packet_bytes=1000)
        with pytest.raises(ValueError, match="next_hop"):
            node.apply_plan(next_hop="two")
        with pytest.raises(ValueError, match="demand_hint"):
            node.apply_plan(demand_hint_bps=-1.0)
        node.apply_plan(next_hop=2)
        assert node.next_hop == 2
        node.apply_plan()  # no parameters: exact no-op
        assert node.next_hop == 2
        node.apply_plan(next_hop=None, rate_bps=0.0)  # becomes the sink
        assert node.next_hop is None

    def test_destination_ignores_parameters(self):
        destination = FlowDestinationRuntime(3, 1, 8, lambda _gen: None)
        destination.apply_plan(rate_bps=123.0, anything="goes")


def _make_engine(network, plan, config, seed, tracer=None):
    rng = RngFactory(seed)
    runtimes, _label = build_plan_runtimes(network, plan, config=config, rng=rng)
    channel = LossyBroadcastChannel(network, rng=rng.derive("channel"))
    slot = config.coded_packet_bytes() / network.capacity
    return EmulationEngine(
        network,
        runtimes,
        channel,
        slot,
        scheduler_rng=rng.derive("mac"),
        capture_rng=rng.derive("capture"),
        tracer=tracer,
    )


class TestEngineHotSwapLayer:
    def test_noop_rebuild_is_bit_identical(self, net_pair):
        network, source, destination = net_pair
        plan = plan_omnc(network, source, destination)
        config = SessionConfig(max_seconds=20.0)
        straight = SessionTracer()
        engine_a = _make_engine(network, plan, config, 9, tracer=straight)
        engine_a.run(400)
        rebuilt = SessionTracer()
        engine_b = _make_engine(network, plan, config, 9, tracer=rebuilt)
        engine_b.run(150)
        engine_b.rebuild_runtime_structures()
        engine_b.run(100)
        engine_b.set_network(engine_b.network)  # same topology: no-op too
        engine_b.run(150)
        assert list(straight.events()) == list(rebuilt.events())
        assert engine_a.stats.transmissions == engine_b.stats.transmissions

    def test_advance_idle_semantics(self, net_pair):
        network, source, destination = net_pair
        plan = plan_omnc(network, source, destination)
        engine = _make_engine(network, plan, SessionConfig(), 9)
        engine.run(50)
        slots = engine.stats.slots
        elapsed = engine.now
        transmitted = dict(engine.stats.transmissions)
        engine.advance_idle(0)
        assert engine.stats.slots == slots
        assert engine.now == elapsed
        engine.advance_idle(10)
        assert engine.stats.slots == slots + 10
        assert engine.now == pytest.approx(elapsed + 10 * engine.slot_duration)
        assert dict(engine.stats.transmissions) == transmitted
        with pytest.raises(ValueError, match=">= 0"):
            engine.advance_idle(-1)

    def test_set_network_rejects_node_count_change(self, net_pair):
        network, source, destination = net_pair
        plan = plan_omnc(network, source, destination)
        engine = _make_engine(network, plan, SessionConfig(), 9)
        smaller = random_network(10, rng=RngFactory(2).derive("t"))
        with pytest.raises(ValueError, match="node count"):
            engine.set_network(smaller)


class TestStaticEquivalence:
    """Calm scenario + oblivious policy == the static pipeline, bit for bit."""

    def test_coded_session_matches_static(self, net_pair):
        network, source, destination = net_pair
        config = SessionConfig(max_seconds=40.0, target_generations=2)
        plan = plan_omnc(network, source, destination)
        static_trace = SessionTracer()
        static = run_coded_session(
            network,
            plan,
            config=config,
            rng=RngFactory(5),
            protocol_label="omnc",
            tracer=static_trace,
        )
        adaptive_trace = SessionTracer()
        adaptive = run_adaptive_session(
            network,
            make_planner("omnc", source, destination),
            make_policy("oblivious"),
            builtin_scenario("calm", duration=40.0, epoch_seconds=10.0),
            config=config,
            rng=RngFactory(5),
            tracer=adaptive_trace,
        )
        assert list(adaptive_trace.events()) == list(static_trace.events())
        assert adaptive.session.transmissions == static.transmissions
        assert adaptive.session.ack_times == static.ack_times
        assert adaptive.session.throughput_bps == static.throughput_bps
        assert adaptive.replans == 0
        assert adaptive.replan_seconds == 0.0

    def test_unicast_session_matches_static(self, net_pair):
        network, source, destination = net_pair
        config = SessionConfig(max_seconds=30.0)
        plan = plan_etx_route(network, source, destination)
        static_trace = SessionTracer()
        static = run_unicast_session(
            network, plan, config=config, rng=RngFactory(5), tracer=static_trace
        )
        adaptive_trace = SessionTracer()
        adaptive = run_adaptive_session(
            network,
            make_planner("etx", source, destination),
            make_policy("oblivious"),
            builtin_scenario("calm", duration=30.0, epoch_seconds=10.0),
            config=config,
            rng=RngFactory(5),
            tracer=adaptive_trace,
        )
        assert list(adaptive_trace.events()) == list(static_trace.events())
        assert adaptive.session.packets_delivered == static.packets_delivered
        assert adaptive.session.throughput_bps == static.throughput_bps


class TestAdaptiveRuns:
    def _drift_run(self, net_pair, *, seed=7, tracer=None):
        network, source, destination = net_pair
        return run_adaptive_session(
            network,
            make_planner("omnc", source, destination),
            make_policy("drift:0.02"),
            builtin_scenario("drift", duration=45.0, epoch_seconds=9.0),
            config=SessionConfig(max_seconds=45.0),
            rng=RngFactory(seed),
            tracer=tracer,
        )

    def test_fixed_seed_and_scenario_reproduce_exactly(self, net_pair):
        first_trace = SessionTracer()
        second_trace = SessionTracer()
        first = self._drift_run(net_pair, tracer=first_trace)
        second = self._drift_run(net_pair, tracer=second_trace)
        assert list(first_trace.events()) == list(second_trace.events())
        assert first == second

    def test_drift_triggers_charged_replans(self, net_pair):
        tracer = SessionTracer()
        result = self._drift_run(net_pair, tracer=tracer)
        assert result.replans >= 1
        assert result.replan_seconds > 0.0
        assert len(result.replan_times) == result.replans
        replan_events = list(tracer.events(kind="replan"))
        assert len(replan_events) == result.replans
        assert all(event.node == -1 for event in replan_events)
        assert sum(1 for r in result.epochs if r.replanned) == result.replans
        # Cold start plus one rate-control run per successful re-plan.
        assert len(result.planner_iterations) == result.replans + 1

    def test_warm_start_reconverges_faster(self, net_pair):
        result = self._drift_run(net_pair)
        cold, *warm = result.planner_iterations
        assert warm, "scenario produced no re-plan to warm-start"
        assert min(warm) < cold

    def test_unplannable_replan_keeps_stale_plan(self, net_pair):
        network, source, destination = net_pair
        spec = ScenarioSpec(
            name="kill-destination",
            duration=30.0,
            epoch_seconds=5.0,
            events=(ScenarioEvent(at=10.0, kind="fail", node=destination),),
        )
        result = run_adaptive_session(
            network,
            make_planner("more", source, destination),
            make_policy("drift:0.001"),
            spec,
            config=SessionConfig(max_seconds=30.0),
            rng=RngFactory(3),
        )
        assert result.failed_replans >= 1
        assert result.replans == 0
        assert result.session.duration == pytest.approx(30.0, rel=0.01)


class TestShardedHotSwap:
    """Mid-run control-plane actions on a sharded session reproduce the
    serial per-node-mode oracle bit for bit: set_network, plan updates,
    structure rebuilds and idle stalls all land at slot barriers."""

    def _swap_run(self, network, drifted, plan, shards):
        from repro.emulator import shard as shard_mod

        config = SessionConfig(max_seconds=40.0)
        decode_log = shard_mod._DecodeLog()
        runtimes, _ = build_plan_runtimes(
            network,
            plan,
            config=config,
            rng=RngFactory(21),
            on_decoded=decode_log,
        )
        slot = config.coded_packet_bytes() / network.capacity
        tracer = SessionTracer()
        updates = {
            plan.forwarders.source: {"rate_bps": 0.25 * network.capacity}
        }
        with shard_mod.ShardedSession(
            network,
            runtimes,
            slot,
            rng_factory=RngFactory(21),
            shards=shards,
            tracer=tracer,
            decode_log=decode_log,
        ) as session:
            session.run(150)
            session.set_network(drifted)
            session.run(100)
            session.apply_plan_updates(updates)
            session.rebuild_runtime_structures()
            session.advance_idle(7)
            session.run(150)
            stats = session.finalize_stats()
        return stats, list(tracer.events())

    def test_sharded_midrun_swaps_match_serial(self, net_pair):
        from repro.topology.dynamics import perturb_link_qualities

        network, source, destination = net_pair
        plan = plan_omnc(network, source, destination)
        drifted = perturb_link_qualities(
            network, sigma=0.08, rng=RngFactory(33).derive("drift")
        )
        serial_stats, serial_events = self._swap_run(
            network, drifted, plan, shards=1
        )
        sharded_stats, sharded_events = self._swap_run(
            network, drifted, plan, shards=2
        )
        assert sharded_events == serial_events
        assert sharded_stats.slots == serial_stats.slots
        assert sharded_stats.elapsed == serial_stats.elapsed
        assert sharded_stats.grants == serial_stats.grants
        assert sharded_stats.transmissions == serial_stats.transmissions
        assert sharded_stats.queue_time_sum == serial_stats.queue_time_sum
        assert sharded_stats.delivered_links == serial_stats.delivered_links

    def test_apply_plan_updates_rejects_unknown_nodes(self, net_pair):
        from repro.emulator import shard as shard_mod

        network, source, destination = net_pair
        plan = plan_omnc(network, source, destination)
        config = SessionConfig(max_seconds=10.0)
        decode_log = shard_mod._DecodeLog()
        runtimes, _ = build_plan_runtimes(
            network, plan, config=config, rng=RngFactory(2),
            on_decoded=decode_log,
        )
        slot = config.coded_packet_bytes() / network.capacity
        with shard_mod.ShardedSession(
            network,
            runtimes,
            slot,
            rng_factory=RngFactory(2),
            shards=2,
            decode_log=decode_log,
        ) as session:
            with pytest.raises(KeyError, match="no runtimes"):
                session.apply_plan_updates({10_000: {"rate_bps": 1.0}})


class TestAdaptiveCodingDigest:
    """Mid-run generation-size switches are shard-oblivious.

    The tentpole oracle: an adaptive-n session — coding parameters
    swapped at generation boundaries while packets are in flight — must
    produce bit-identical traces and stats for shards in {1, 2, 4}.
    The pending-coding handoff, the stale-packet drops and the decoder
    rebuilds all have to land at the same slot barriers regardless of
    how the node set is partitioned."""

    def _coding_run(self, network, plan, shards):
        from repro.emulator import shard as shard_mod
        from repro.protocols.base import CodingParams

        config = SessionConfig(
            max_seconds=40.0,
            blocks=6,
            block_size=256,
            coding_fidelity="exact",
        )
        decode_log = shard_mod._DecodeLog()
        runtimes, _ = build_plan_runtimes(
            network,
            plan,
            config=config,
            rng=RngFactory(21),
            on_decoded=decode_log,
        )
        slot = config.coded_packet_bytes() / network.capacity
        tracer = SessionTracer()

        def everyone(params):
            return {node: {"coding": params} for node in runtimes}

        with shard_mod.ShardedSession(
            network,
            runtimes,
            slot,
            rng_factory=RngFactory(21),
            shards=shards,
            tracer=tracer,
            decode_log=decode_log,
        ) as session:
            session.run(200)
            # Grow the generation mid-run; stale n=6 packets are still
            # in flight when the boundary lands.
            session.apply_plan_updates(everyone(CodingParams(blocks=9)))
            session.broadcast_generation_advance(1)
            session.run(250)
            # Shrink and go systematic for the next generation.
            session.apply_plan_updates(
                everyone(CodingParams(blocks=4, systematic=True))
            )
            session.broadcast_generation_advance(2)
            session.run(250)
            stats = session.finalize_stats()
        return stats, list(tracer.events())

    @pytest.mark.parametrize("shards", [2, 4])
    def test_adaptive_blocks_swap_is_shard_oblivious(self, net_pair, shards):
        network, source, destination = net_pair
        plan = plan_omnc(network, source, destination)
        serial_stats, serial_events = self._coding_run(network, plan, 1)
        sharded_stats, sharded_events = self._coding_run(
            network, plan, shards
        )
        assert sharded_events == serial_events
        assert sharded_stats.slots == serial_stats.slots
        assert sharded_stats.elapsed == serial_stats.elapsed
        assert sharded_stats.grants == serial_stats.grants
        assert sharded_stats.transmissions == serial_stats.transmissions
        assert sharded_stats.queue_time_sum == serial_stats.queue_time_sum
        assert sharded_stats.delivered_links == serial_stats.delivered_links
