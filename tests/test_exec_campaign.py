"""Campaigns on the execution engine: determinism, caching, failures."""

import multiprocessing
import os
import signal
import time

import pytest

from repro import obs
from repro.exec import ExecutionPolicy
from repro.experiments.common import (
    CampaignConfig,
    CampaignFailure,
    SessionJob,
    build_network,
    campaign_jobs,
    pick_sessions,
    run_campaign,
    session_rng,
)

TINY = CampaignConfig(
    node_count=40,
    sessions=4,
    min_hops=2,
    max_hops=6,
    session_seconds=20.0,
    target_generations=2,
    seed=7,
)


@pytest.fixture(scope="module")
def serial_campaign():
    return run_campaign(TINY, policy=ExecutionPolicy(jobs=1))


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, serial_campaign):
        parallel = run_campaign(TINY, policy=ExecutionPolicy(jobs=4))
        assert parallel.digest() == serial_campaign.digest()
        assert len(parallel.records) == len(serial_campaign.records)

    def test_worker_count_is_irrelevant(self, serial_campaign):
        two = run_campaign(TINY, policy=ExecutionPolicy(jobs=2))
        three = run_campaign(TINY, policy=ExecutionPolicy(jobs=3))
        assert two.digest() == three.digest() == serial_campaign.digest()

    def test_default_policy_matches_explicit_serial(self, serial_campaign):
        assert run_campaign(TINY).digest() == serial_campaign.digest()

    def test_metrics_aggregate_identically(self):
        def campaign_metrics(jobs):
            registry = obs.MetricsRegistry(enabled=True)
            run_campaign(
                TINY, registry=registry, policy=ExecutionPolicy(jobs=jobs)
            )
            return {
                name: record
                for name, record in registry.snapshot().items()
                if not name.startswith(("campaign.wall", "exec."))
            }

        assert campaign_metrics(1) == campaign_metrics(2)

    def test_session_rng_depends_only_on_seed_and_index(self):
        a = session_rng(TINY.seed, 3).derive("omnc").random()
        b = session_rng(TINY.seed, 3).derive("omnc").random()
        c = session_rng(TINY.seed, 4).derive("omnc").random()
        assert a == b
        assert a != c

    def test_digest_covers_failures(self, serial_campaign):
        import copy

        mutated = copy.copy(serial_campaign)
        mutated.failures = list(serial_campaign.failures) + [
            CampaignFailure(session_index=99, stage="session", error="X")
        ]
        assert mutated.digest() != serial_campaign.digest()


class TestCampaignCache:
    def test_cache_hit_reproduces_and_counts(self, tmp_path, serial_campaign):
        policy = ExecutionPolicy(jobs=1, cache_dir=str(tmp_path / "cache"))
        first = run_campaign(TINY, policy=policy)
        second = run_campaign(TINY, policy=policy)
        assert first.cache_hits == 0
        assert second.cache_hits == TINY.sessions
        assert (
            first.digest()
            == second.digest()
            == serial_campaign.digest()
        )

    def test_parallel_run_reuses_serial_cache(self, tmp_path, serial_campaign):
        cache_dir = str(tmp_path / "cache")
        run_campaign(TINY, policy=ExecutionPolicy(jobs=1, cache_dir=cache_dir))
        parallel = run_campaign(
            TINY, policy=ExecutionPolicy(jobs=4, cache_dir=cache_dir)
        )
        assert parallel.cache_hits == TINY.sessions
        assert parallel.digest() == serial_campaign.digest()

    def test_session_sweep_reuses_cached_sessions(self, tmp_path):
        """The job hash excludes selection-only knobs like ``sessions``."""
        cache_dir = str(tmp_path / "cache")
        small = run_campaign(
            CampaignConfig(**{**TINY.__dict__, "sessions": 2}),
            policy=ExecutionPolicy(jobs=1, cache_dir=cache_dir),
        )
        assert small.cache_hits == 0
        grown = run_campaign(
            TINY, policy=ExecutionPolicy(jobs=1, cache_dir=cache_dir)
        )
        # The first two sessions are identical draws -> cache hits.
        assert grown.cache_hits == 2

    def test_resume_after_kill_mid_campaign(self, tmp_path, serial_campaign):
        """A campaign killed mid-run resumes from its cache."""
        cache_dir = str(tmp_path / "cache")
        ready = multiprocessing.Event()

        def victim():
            ready.set()
            run_campaign(
                CampaignConfig(**{**TINY.__dict__, "session_seconds": 200.0}),
                policy=ExecutionPolicy(jobs=1, cache_dir=cache_dir),
            )

        process = multiprocessing.Process(target=victim)
        process.start()
        ready.wait(10)
        # Give it time to finish at least one (longer) session, then kill
        # it the hard way mid-campaign.
        deadline = time.monotonic() + 30
        from repro.exec import ResultCache

        while time.monotonic() < deadline and len(ResultCache(cache_dir)) < 1:
            time.sleep(0.05)
        os.kill(process.pid, signal.SIGKILL)
        process.join(10)
        cached_before = len(ResultCache(cache_dir))
        assert 1 <= cached_before < TINY.sessions  # genuinely interrupted

        resumed = run_campaign(
            CampaignConfig(**{**TINY.__dict__, "session_seconds": 200.0}),
            policy=ExecutionPolicy(jobs=1, cache_dir=cache_dir),
        )
        assert resumed.cache_hits == cached_before
        assert len(resumed.records) == TINY.sessions
        assert not resumed.failures


def _explode(_payload):
    raise RuntimeError("poisoned session")


class TestFailureRecording:
    def test_selection_shortfall_is_recorded_not_raised(self):
        # A hop-count band nothing satisfies: every slot becomes a
        # recorded selection failure and the campaign still returns.
        impossible = CampaignConfig(
            node_count=30,
            sessions=3,
            min_hops=29,
            max_hops=30,
            session_seconds=10.0,
            target_generations=1,
            seed=3,
        )
        campaign = run_campaign(impossible)
        assert campaign.records == []
        assert len(campaign.failures) == 3
        assert all(f.stage == "selection" for f in campaign.failures)

    def test_strict_pick_sessions_still_raises(self):
        impossible = CampaignConfig(
            node_count=30,
            sessions=3,
            min_hops=29,
            max_hops=30,
            session_seconds=10.0,
            target_generations=1,
            seed=3,
        )
        _, network = build_network(impossible)
        with pytest.raises(RuntimeError):
            pick_sessions(impossible, network)
        assert pick_sessions(impossible, network, strict=False) == []

    def test_poisoned_job_is_isolated(self, monkeypatch):
        """One failing session is recorded; the rest of the campaign runs."""
        from repro.experiments import common as common_module

        real = common_module.execute_session_job

        def poisoned(job):
            if job.session_index == 1:
                raise RuntimeError("poisoned session")
            return real(job)

        monkeypatch.setattr(common_module, "execute_session_job", poisoned)
        campaign = run_campaign(TINY)  # serial path calls via the module
        assert len(campaign.records) == TINY.sessions - 1
        (failure,) = campaign.failures
        assert failure.stage == "session"
        assert failure.session_index == 1
        assert failure.error == "RuntimeError"
        assert "poisoned" in failure.message

    def test_failed_sessions_surface_in_metrics(self, monkeypatch):
        from repro.experiments import common as common_module

        monkeypatch.setattr(common_module, "execute_session_job", _explode)
        registry = obs.MetricsRegistry(enabled=True)
        campaign = run_campaign(TINY, registry=registry)
        assert campaign.records == []
        assert len(campaign.failures) == TINY.sessions
        snapshot = registry.snapshot()
        assert snapshot["campaign.sessions_failed"]["value"] == TINY.sessions
        assert snapshot["exec.jobs_failed"]["value"] == TINY.sessions


class TestJobShape:
    def test_campaign_jobs_are_stable(self):
        _, network = build_network(TINY)
        sessions = pick_sessions(TINY, network)
        first = [spec.key for spec in campaign_jobs(TINY, sessions)]
        second = [spec.key for spec in campaign_jobs(TINY, sessions)]
        assert first == second
        assert len(set(first)) == len(first)  # distinct jobs

    def test_cache_key_ignores_selection_only_knobs(self):
        base = SessionJob(config=TINY, session_index=0, source=1, destination=2)
        swept = SessionJob(
            config=CampaignConfig(**{**TINY.__dict__, "sessions": 40}),
            session_index=0,
            source=1,
            destination=2,
        )
        assert base.cache_key() == swept.cache_key()

    def test_cache_key_tracks_execution_knobs(self):
        base = SessionJob(config=TINY, session_index=0, source=1, destination=2)
        longer = SessionJob(
            config=CampaignConfig(**{**TINY.__dict__, "session_seconds": 99.0}),
            session_index=0,
            source=1,
            destination=2,
        )
        assert base.cache_key() != longer.cache_key()
