"""Per-node data planes: sources, relays, destinations, unicast FIFOs."""

import numpy as np
import pytest

from repro.emulator.node import (
    CodedDestinationRuntime,
    CodedRelayRuntime,
    CodedSourceRuntime,
    FlowDestinationRuntime,
    FlowPacket,
    FlowRelayRuntime,
    FlowSourceRuntime,
    UnicastRuntime,
)

PACKET_BYTES = 1000


def exact_source(rate=2000.0, blocks=4, queue_limit=10):
    return CodedSourceRuntime(
        0, 1, blocks, rate, PACKET_BYTES, np.random.default_rng(0),
        queue_limit=queue_limit,
    )


class TestCodedSource:
    def test_generates_at_rate(self):
        source = exact_source(rate=2000.0)  # 2 packets/second
        for _ in range(10):
            source.on_slot(0.5)  # 5 seconds -> 10 packets
        assert source.packets_generated == 10

    def test_backlog_and_pop(self):
        source = exact_source()
        source.on_slot(1.0)
        assert source.backlog() == 2.0
        packet = source.pop_transmission()
        assert packet is not None
        assert source.queue_length() == 1

    def test_pop_empty_returns_none(self):
        assert exact_source().pop_transmission() is None

    def test_queue_limit_drops(self):
        source = exact_source(rate=1e6, queue_limit=5)
        source.on_slot(1.0)
        assert source.queue_length() == 5
        assert source.packets_dropped > 0

    def test_generation_advance_flushes_queue(self):
        source = exact_source()
        source.on_slot(1.0)
        source.advance_generation(1)
        assert source.queue_length() == 0
        source.on_slot(1.0)
        assert source.pop_transmission().generation_id == 1

    def test_stale_advance_ignored(self):
        source = exact_source()
        source.advance_generation(2)
        source.advance_generation(1)  # ignored
        source.on_slot(1.0)
        assert source.pop_transmission().generation_id == 2

    def test_demand_rate(self):
        source = exact_source(rate=2000.0)
        assert source.demand_rate(0.5) == pytest.approx(1.0)


class TestCodedRelay:
    def _relay(self, mode="rate", **kwargs):
        defaults = dict(rate_bps=2000.0) if mode == "rate" else dict(
            tx_credit=1.0, upstream=(0,)
        )
        defaults.update(kwargs)
        return CodedRelayRuntime(
            1, 1, 4, PACKET_BYTES, np.random.default_rng(1), mode=mode, **defaults
        )

    def _packet(self, vector, generation=0):
        from repro.coding.packet import CodedPacket

        return CodedPacket(1, generation, np.asarray(vector, dtype=np.uint8))

    def test_rate_relay_needs_content(self):
        relay = self._relay()
        relay.on_slot(1.0)  # credit accrues but buffer empty
        assert relay.backlog() == 0.0
        relay.on_receive(self._packet([1, 0, 0, 0]), sender=0)
        relay.on_slot(1.0)
        assert relay.backlog() > 0

    def test_credit_cap_limits_burst(self):
        relay = self._relay()
        for _ in range(100):
            relay.on_slot(1.0)  # bank credit far beyond the cap
        relay.on_receive(self._packet([1, 0, 0, 0]), sender=0)
        relay.on_slot(0.0001)
        assert relay.queue_length() <= 4  # cap (3) + the slot's accrual

    def test_credit_relay_earns_on_upstream_hearing(self):
        relay = self._relay(mode="credit")
        relay.on_receive(self._packet([1, 0, 0, 0]), sender=0)
        assert relay.packets_generated == 1  # credit 1.0 -> one packet

    def test_credit_relay_ignores_downstream_senders(self):
        relay = self._relay(mode="credit")
        relay.on_receive(self._packet([1, 0, 0, 0]), sender=5)  # not upstream
        assert relay.packets_generated == 0
        assert relay.buffered == 1  # still stored (innovative)

    def test_noninnovative_still_earns_credit(self):
        relay = self._relay(mode="credit", tx_credit=0.5)
        relay.on_receive(self._packet([1, 0, 0, 0]), sender=0)
        relay.on_receive(self._packet([1, 0, 0, 0]), sender=0)  # duplicate
        assert relay.packets_accepted == 1
        assert relay.packets_heard == 2
        assert relay.packets_generated == 1  # 0.5 + 0.5 credits

    def test_newer_generation_flushes(self):
        relay = self._relay()
        relay.on_receive(self._packet([1, 0, 0, 0], generation=0), sender=0)
        relay.on_receive(self._packet([0, 1, 0, 0], generation=2), sender=0)
        assert relay.buffered == 1
        packet = None
        relay.on_slot(1.0)
        packet = relay.pop_transmission()
        assert packet.generation_id == 2

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            CodedRelayRuntime(
                1, 1, 4, PACKET_BYTES, np.random.default_rng(0), mode="x"
            )


class TestCodedDestination:
    def test_ack_fires_exactly_at_full_rank(self):
        from repro.coding.packet import CodedPacket

        acks = []
        destination = CodedDestinationRuntime(9, 1, 3, acks.append)
        identity = np.eye(3, dtype=np.uint8)
        for k in range(3):
            destination.on_receive(CodedPacket(1, 0, identity[k]), sender=0)
        assert acks == [0]
        assert destination.generations_decoded == 1

    def test_ignores_other_sessions_and_generations(self):
        from repro.coding.packet import CodedPacket

        destination = CodedDestinationRuntime(9, 1, 3, lambda g: None)
        destination.on_receive(
            CodedPacket(2, 0, np.eye(3, dtype=np.uint8)[0]), sender=0
        )
        destination.on_receive(
            CodedPacket(1, 5, np.eye(3, dtype=np.uint8)[0]), sender=0
        )
        assert destination.packets_heard == 0
        assert destination.rank == 0


class TestFlowRuntimes:
    def test_flow_source_packets_carry_full_content(self):
        source = FlowSourceRuntime(0, 1, 40, 2000.0, PACKET_BYTES)
        source.on_slot(1.0)
        packet = source.pop_transmission()
        assert packet.content == 40.0

    def test_flow_relay_gains_only_from_ahead_senders(self):
        relay = FlowRelayRuntime(1, 1, 40, PACKET_BYTES, mode="rate", rate_bps=1000)
        relay.on_receive(FlowPacket(1, 0, 5.0), sender=0)
        assert relay.information == 1.0
        relay.on_receive(FlowPacket(1, 0, 0.5), sender=0)  # behind: useless
        assert relay.information == 1.0

    def test_flow_relay_caps_at_blocks(self):
        relay = FlowRelayRuntime(1, 1, 2, PACKET_BYTES, mode="rate", rate_bps=1000)
        for _ in range(5):
            relay.on_receive(FlowPacket(1, 0, 10.0), sender=0)
        assert relay.information == 2.0

    def test_flow_destination_acks_at_blocks(self):
        acks = []
        destination = FlowDestinationRuntime(9, 1, 3, acks.append)
        for _ in range(3):
            destination.on_receive(FlowPacket(1, 0, 40.0), sender=0)
        assert acks == [0]
        assert destination.generations_decoded == 1

    def test_flow_generation_advance(self):
        relay = FlowRelayRuntime(1, 1, 4, PACKET_BYTES, mode="credit",
                                 tx_credit=1.0, upstream=(0,))
        relay.on_receive(FlowPacket(1, 0, 4.0), sender=0)
        relay.on_receive(FlowPacket(1, 3, 4.0), sender=0)
        assert relay.information == 1.0  # reset then one new unit


class TestUnicastRuntime:
    def test_source_generates_and_forwards(self):
        delivered = []
        source = UnicastRuntime(0, 1, rate_bps=2000.0, packet_bytes=PACKET_BYTES)
        sink = UnicastRuntime(1, None, on_delivered=delivered.append)
        source.on_slot(1.0)
        assert source.backlog() == 2.0
        seq = source.peek_sequence()
        source.complete_transmission(True)
        sink.receive_sequence(seq)
        assert delivered == [0]
        assert sink.packets_delivered == 1

    def test_failed_transmission_keeps_head(self):
        source = UnicastRuntime(0, 1, rate_bps=1000.0, packet_bytes=PACKET_BYTES)
        source.on_slot(1.0)
        head = source.peek_sequence()
        source.complete_transmission(False)
        assert source.peek_sequence() == head  # MAC retransmission

    def test_destination_has_no_backlog(self):
        sink = UnicastRuntime(1, None)
        sink.receive_sequence(0)
        assert sink.backlog() == 0.0
        assert sink.peek_sequence() is None

    def test_relay_queue_limit(self):
        relay = UnicastRuntime(1, 2, queue_limit=2)
        for seq in range(5):
            relay.receive_sequence(seq)
        assert relay.queue_length() == 2
        assert relay.packets_dropped == 3

    def test_complete_without_packet_raises(self):
        with pytest.raises(RuntimeError):
            UnicastRuntime(0, 1).complete_transmission(True)

    def test_demand_hint(self):
        node = UnicastRuntime(
            0, 1, packet_bytes=PACKET_BYTES, demand_hint_bps=2000.0
        )
        assert node.demand_rate(0.5) == pytest.approx(1.0)
