"""Primal-recovery averaging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimization.recovery import IterateAverager


class TestIterateAverager:
    def test_empty_average_is_zero(self):
        averager = IterateAverager(3)
        assert np.array_equal(averager.average(), np.zeros(3))

    def test_full_average(self):
        averager = IterateAverager(2, tail=1.0)
        averager.push(np.array([1.0, 0.0]))
        averager.push(np.array([3.0, 2.0]))
        assert np.allclose(averager.average(), [2.0, 1.0])

    def test_tail_average_drops_early_iterates(self):
        averager = IterateAverager(1, tail=0.5)
        for value in [100.0, 100.0, 1.0, 1.0]:
            averager.push(np.array([value]))
        # Tail of 0.5 over 4 iterates averages the last 2 only.
        assert averager.average()[0] == pytest.approx(1.0)

    def test_tail_of_single_iterate(self):
        averager = IterateAverager(1, tail=0.5)
        averager.push(np.array([7.0]))
        assert averager.average()[0] == pytest.approx(7.0)

    def test_count(self):
        averager = IterateAverager(1)
        assert averager.count == 0
        averager.push(np.array([1.0]))
        assert averager.count == 1

    def test_shape_validation(self):
        averager = IterateAverager(2)
        with pytest.raises(ValueError):
            averager.push(np.zeros(3))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            IterateAverager(-1)
        with pytest.raises(ValueError):
            IterateAverager(2, tail=0.0)
        with pytest.raises(ValueError):
            IterateAverager(2, tail=1.5)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30)
    def test_full_average_matches_numpy(self, values):
        averager = IterateAverager(1, tail=1.0)
        for value in values:
            averager.push(np.array([value]))
        assert averager.average()[0] == pytest.approx(np.mean(values), abs=1e-9)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=4,
            max_size=40,
        ),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=30)
    def test_tail_average_matches_slice(self, values, tail):
        averager = IterateAverager(1, tail=tail)
        for value in values:
            averager.push(np.array([value]))
        t = len(values)
        start = int(np.floor(t * (1.0 - tail)))
        start = min(start, t - 1)
        expected = np.mean(values[start:])
        assert averager.average()[0] == pytest.approx(expected, abs=1e-9)
