"""Full-stack integration: real payload bytes across an emulated network.

These tests exercise the complete pipeline the examples demonstrate —
actual data split into generations, coded with real GF(2^8) payloads,
pushed through the emulator's lossy channel, progressively decoded, and
byte-compared at the destination.
"""

import numpy as np

from repro.coding.decoder import ProgressiveDecoder
from repro.coding.encoder import RelayReEncoder, SourceEncoder
from repro.coding.generation import GenerationParams, split_into_generations
from repro.emulator.channel import LossyBroadcastChannel
from repro.topology.random_network import chain_topology, diamond_topology
from repro.util.rng import RngFactory


def transfer_over_diamond(data: bytes, seed: int = 0) -> bytes:
    """Send ``data`` over the two-relay diamond with real coding."""
    params = GenerationParams(blocks=8, block_size=64)
    network = diamond_topology(p_su=0.7, p_sv=0.6, p_ut=0.8, p_vt=0.7)
    rng = RngFactory(seed)
    channel = LossyBroadcastChannel(network, rng=rng.derive("channel"))
    generations = split_into_generations(data, params)
    recovered = bytearray()
    for generation in generations:
        source = SourceEncoder(1, generation, rng.derive("src", generation.generation_id))
        relays = {
            1: RelayReEncoder(1, params.blocks, rng.derive("r1", generation.generation_id),
                              generation_id=generation.generation_id),
            2: RelayReEncoder(1, params.blocks, rng.derive("r2", generation.generation_id),
                              generation_id=generation.generation_id),
        }
        decoder = ProgressiveDecoder(params.blocks, params.block_size)
        safety = 0
        while not decoder.is_complete:
            safety += 1
            assert safety < 10_000, "transfer failed to converge"
            # Source broadcast: both relays may overhear.
            packet = source.next_packet()
            for relay_id in channel.broadcast(0, [1, 2]):
                relays[relay_id].accept(packet)
            # Each relay with content re-encodes toward the destination.
            for relay_id, relay in relays.items():
                if relay.buffered == 0:
                    continue
                coded = relay.next_packet()
                if channel.broadcast(relay_id, [3]):
                    decoder.add_packet(coded)
        recovered.extend(decoder.decode_generation(generation.generation_id).to_bytes())
    return bytes(recovered[: len(data)])


class TestFileTransfer:
    def test_bytes_survive_the_lossy_diamond(self):
        payload = bytes(np.random.default_rng(1).integers(0, 256, 1500, dtype=np.uint8))
        assert transfer_over_diamond(payload) == payload

    def test_multiple_generations(self):
        params = GenerationParams(blocks=8, block_size=64)
        payload = b"the quick brown fox " * 60  # > 2 generations
        assert len(payload) > params.generation_bytes
        assert transfer_over_diamond(payload, seed=3) == payload

    def test_different_seeds_same_result(self):
        payload = b"determinism is a feature" * 10
        assert transfer_over_diamond(payload, seed=4) == payload
        assert transfer_over_diamond(payload, seed=5) == payload


class TestRelayChainIntegrity:
    def test_three_hop_chain_with_reencoding(self):
        # 0 -> 1 -> 2 with re-encoding at every hop; decoded data must be
        # bit-identical despite fresh coefficients at each relay.
        params = GenerationParams(blocks=6, block_size=32)
        network = chain_topology((0.8, 0.8))
        rng = RngFactory(9)
        channel = LossyBroadcastChannel(network, rng=rng.derive("channel"))
        data = bytes(range(192))
        generation = split_into_generations(data, params)[0]
        source = SourceEncoder(1, generation, rng.derive("src"))
        relay = RelayReEncoder(1, params.blocks, rng.derive("relay"))
        decoder = ProgressiveDecoder(params.blocks, params.block_size)
        safety = 0
        while not decoder.is_complete:
            safety += 1
            assert safety < 10_000
            if channel.broadcast(0, [1]):
                relay.accept(source.next_packet())
            if relay.buffered and channel.broadcast(1, [2]):
                decoder.add_packet(relay.next_packet())
        assert decoder.decode_generation(0).to_bytes() == data
