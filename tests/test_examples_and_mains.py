"""Smoke coverage for the runnable surfaces: examples and module mains.

Examples are user-facing documentation; a broken example is a broken
promise.  These tests compile every example and exercise the cheap
module entry points end-to-end (figure mains run at smoke scale via
direct function calls elsewhere; here we check the printing paths).
"""

import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_expected_examples_present(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "file_transfer",
            "mesh_comparison",
            "distributed_optimization",
            "multi_unicast",
            "adaptive_replanning",
            "trace_analysis",
        } <= names


class TestModuleMains:
    def test_fig1_main_prints_table(self, capsys):
        from repro.experiments.fig1_convergence import main

        main()
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "LP optimum" in out

    def test_coding_speed_main(self, capsys):
        from repro.experiments.coding_speed import run_coding_speed

        points = run_coding_speed(shapes=[(8, 64)])
        assert points[0].speedup > 1

    def test_cli_fig1(self, capsys):
        from repro.cli import main

        assert main(["fig1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_cli_convergence_help(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["convergence"])
        assert callable(args.func)


class TestDocumentationFiles:
    def test_docs_exist_and_are_substantial(self):
        root = pathlib.Path(__file__).parent.parent
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            text = (root / name).read_text()
            assert len(text) > 2000, f"{name} is suspiciously short"

    def test_experiments_md_covers_every_figure(self):
        root = pathlib.Path(__file__).parent.parent
        text = (root / "EXPERIMENTS.md").read_text()
        for token in ("Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "91", "3-5"):
            assert token in text

    def test_design_md_maps_modules(self):
        root = pathlib.Path(__file__).parent.parent
        text = (root / "DESIGN.md").read_text()
        for module in (
            "repro/coding/gf256.py",
            "repro/optimization/rate_control.py",
            "repro/emulator/scheduler.py",
            "repro/protocols/omnc.py",
        ):
            assert module in text, f"{module} missing from DESIGN.md"
