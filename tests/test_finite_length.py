"""Finite-length coding: the closed-form model, the solver, the
systematic fast path and the per-epoch controller.

The model claims are checked two ways: structurally (monotonicity,
limits, validation) and against Monte-Carlo runs of the *actual*
progressive decoder — the same GF(2^8) elimination the emulator uses —
so the closed forms are pinned to the implementation, not to themselves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.coding.decoder import ProgressiveDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.finite_length import (
    DEFAULT_CANDIDATES,
    decode_failure_probability,
    expected_decode_packets,
    full_rank_probability,
    optimal_blocks,
    overhead_ratio,
    transmissions_for_target,
)
from repro.coding.generation import (
    MAX_GENERATION_BLOCKS,
    Generation,
    GenerationParams,
    random_generation,
)
from repro.emulator.plan import CodingParams
from repro.emulator.session import SessionConfig
from repro.protocols.adaptive import CodingController, make_coding_controller
from repro.protocols.more import plan_more
from repro.protocols.omnc import plan_omnc
from repro.topology.random_network import chain_topology, diamond_topology
from repro.util.rng import RngFactory


class TestFullRankProbability:
    def test_impossible_below_rank(self):
        assert full_rank_probability(5, 6) == 0.0

    def test_increases_with_receptions(self):
        probs = [full_rank_probability(r, 8) for r in range(8, 14)]
        assert all(b > a for a, b in zip(probs, probs[1:]))
        assert probs[-1] < 1.0

    def test_large_field_is_nearly_deterministic(self):
        # q = 256: P[n random vectors span] = prod(1 - q^-i) ~ 0.996.
        assert full_rank_probability(40, 40) == pytest.approx(0.9961, abs=1e-3)

    def test_binary_field_is_much_weaker(self):
        assert full_rank_probability(8, 8, field_size=2) < full_rank_probability(
            8, 8, field_size=256
        )


class TestExpectedDecodePackets:
    def test_barely_above_n_for_gf256(self):
        expected = expected_decode_packets(40)
        assert 40.0 < expected < 40.01

    def test_matches_monte_carlo_decoder(self):
        # Feed the real decoder uniform random GF(2^8) rows until full
        # rank; the mean reception count must match the closed form.
        n = 8
        rng = np.random.default_rng(2008)
        trials = 400
        total = 0
        for _ in range(trials):
            decoder = ProgressiveDecoder(n, registry=obs.MetricsRegistry())
            received = 0
            while not decoder.is_complete:
                row = rng.integers(0, 256, size=n, dtype=np.uint8)
                received += 1
                decoder.add_row(row)
            total += received
        measured = total / trials
        assert measured == pytest.approx(expected_decode_packets(n), abs=0.05)


class TestDecodeFailureProbability:
    def test_lossless_needs_only_rank(self):
        # With every transmission delivered, failure is the full-rank
        # complement alone.
        assert decode_failure_probability(8, 0.0, 12) == pytest.approx(
            1.0 - full_rank_probability(12, 8)
        )

    def test_certain_loss_never_decodes(self):
        assert decode_failure_probability(8, 1.0, 100) == 1.0

    def test_monotone_in_loss(self):
        probs = [
            decode_failure_probability(8, loss, 14)
            for loss in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
        ]
        assert all(b > a for a, b in zip(probs, probs[1:]))

    def test_monotone_in_transmissions(self):
        probs = [decode_failure_probability(8, 0.3, t) for t in (8, 12, 16, 24)]
        assert all(b < a for a, b in zip(probs, probs[1:]))

    def test_matches_monte_carlo_decoder(self):
        # Binomial erasures in front of the real decoder: the measured
        # failure rate must sit within sampling noise of the closed form.
        n, loss, transmissions = 6, 0.3, 10
        rng = np.random.default_rng(77)
        trials = 600
        failures = 0
        for _ in range(trials):
            decoder = ProgressiveDecoder(n, registry=obs.MetricsRegistry())
            for _t in range(transmissions):
                if rng.random() < loss:
                    continue
                decoder.add_row(rng.integers(0, 256, size=n, dtype=np.uint8))
                if decoder.is_complete:
                    break
            if not decoder.is_complete:
                failures += 1
        model = decode_failure_probability(n, loss, transmissions)
        noise = 4.0 * (model * (1.0 - model) / trials) ** 0.5
        assert failures / trials == pytest.approx(model, abs=max(noise, 0.02))


class TestTransmissionsAndOverhead:
    def test_transmissions_grow_with_loss(self):
        counts = [
            transmissions_for_target(16, loss)
            for loss in (0.0, 0.2, 0.4, 0.6)
        ]
        assert None not in counts
        assert all(b > a for a, b in zip(counts, counts[1:]))

    def test_infeasible_returns_none(self):
        assert (
            transmissions_for_target(16, 0.99, max_transmissions=32) is None
        )

    def test_overhead_monotone_in_loss(self):
        for blocks in DEFAULT_CANDIDATES:
            ratios = [
                overhead_ratio(blocks, loss)
                for loss in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
            ]
            assert all(b > a for a, b in zip(ratios, ratios[1:])), blocks

    def test_header_amortization_favors_large_n_when_lossless(self):
        # At zero loss the n-byte coefficient header dominates: bigger
        # generations amortize it better.
        assert overhead_ratio(40, 0.0) < overhead_ratio(8, 0.0)


class TestOptimalBlocks:
    def test_paper_size_wins_on_clean_links(self):
        assert optimal_blocks(0.0) == 40

    def test_shrinks_as_loss_grows(self):
        sizes = [
            optimal_blocks(loss) for loss in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
        ]
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] < sizes[0]

    def test_respects_candidate_set(self):
        assert optimal_blocks(0.3, candidates=(8, 16)) in (8, 16)

    def test_target_overhead_picks_largest_within_budget(self):
        loose = optimal_blocks(0.0, target_overhead=10.0)
        assert loose == max(DEFAULT_CANDIDATES)


class TestGenerationSizeValidation:
    def test_cap_is_enforced_with_clear_message(self):
        with pytest.raises(ValueError, match="255"):
            GenerationParams(blocks=256, block_size=32)

    def test_cap_boundary_is_allowed(self):
        params = GenerationParams(blocks=MAX_GENERATION_BLOCKS, block_size=1)
        assert params.blocks == 255

    def test_coding_params_reuse_the_cap(self):
        with pytest.raises(ValueError, match="255"):
            CodingParams(blocks=300)

    def test_session_config_reuses_the_cap(self):
        with pytest.raises(ValueError, match="255"):
            SessionConfig(blocks=256)


def _run_through_channel(encoder, decoder, registry, loss, rng):
    """Feed encoder packets through i.i.d. loss until decode completes."""
    while not decoder.is_complete:
        packet = encoder.next_packet()
        if loss and rng.random() < loss:
            continue
        decoder.add_packet(packet)
    return registry.value("decoder.rows_eliminated")


class TestSystematicEncoding:
    @given(
        blocks=st.integers(min_value=2, max_value=12),
        block_size=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_byte_identical_payloads_with_fewer_eliminations(
        self, blocks, block_size, seed
    ):
        # On lossless links systematic and dense RLNC must deliver the
        # exact same generation, and systematic must do strictly less
        # elimination work (its plain prefix decodes by placement).
        params = GenerationParams(blocks=blocks, block_size=block_size)
        rng = RngFactory(seed)
        generation = random_generation(0, params, rng.derive("payload"))
        eliminated = {}
        decoded = {}
        for systematic in (False, True):
            encoder = SourceEncoder(
                1,
                Generation(0, generation.matrix.copy()),
                rng.derive("coding", int(systematic)),
                systematic=systematic,
            )
            registry = obs.MetricsRegistry()
            decoder = ProgressiveDecoder(
                blocks, block_size, registry=registry
            )
            eliminated[systematic] = _run_through_channel(
                encoder, decoder, registry, 0.0, None
            )
            decoded[systematic] = decoder.decode()
        assert np.array_equal(decoded[True], generation.matrix)
        assert np.array_equal(decoded[False], generation.matrix)
        assert eliminated[True] == 0
        assert eliminated[False] >= blocks
        assert eliminated[True] < eliminated[False]

    def test_lossy_channel_still_decodes_identically(self):
        params = GenerationParams(blocks=8, block_size=64)
        rng = RngFactory(5)
        generation = random_generation(0, params, rng.derive("payload"))
        channel = np.random.default_rng(17)
        for systematic in (False, True):
            encoder = SourceEncoder(
                1,
                Generation(0, generation.matrix.copy()),
                rng.derive("coding", int(systematic)),
                systematic=systematic,
            )
            registry = obs.MetricsRegistry()
            decoder = ProgressiveDecoder(8, 64, registry=registry)
            _run_through_channel(encoder, decoder, registry, 0.35, channel)
            assert np.array_equal(decoder.decode(), generation.matrix)


class TestCodingController:
    def _plan(self, loss=0.2):
        p = 1.0 - loss
        network = diamond_topology(p_su=p, p_sv=p, p_ut=p, p_vt=p)
        return network, plan_omnc(network, 0, 3)

    def test_estimate_loss_averages_participant_links(self):
        network, plan = self._plan(loss=0.2)
        estimate = CodingController.estimate_loss(network, plan)
        assert estimate == pytest.approx(0.2, abs=1e-9)

    def test_estimate_ignores_outside_links(self):
        # A chain with a terrible far link: sessions planned over the
        # clean prefix must not see the far link's loss.
        network = chain_topology((0.9, 0.9, 0.05))
        plan = plan_more(network, 0, 2)
        estimate = CodingController.estimate_loss(network, plan)
        assert estimate < 0.2

    def test_adaptive_mode_solves_for_blocks(self):
        network, plan = self._plan(loss=0.4)
        controller = CodingController("adaptive", blocks=40, block_size=1024)
        decision = controller.decide(network, plan)
        assert decision is not None
        assert decision.blocks == optimal_blocks(
            CodingController.estimate_loss(network, plan), block_size=1024
        )
        assert not decision.systematic
        assert controller.history == (decision,)

    def test_systematic_mode_keeps_configured_blocks(self):
        network, plan = self._plan()
        controller = CodingController("systematic", blocks=24)
        decision = controller.decide(network, plan)
        assert decision == CodingParams(blocks=24, systematic=True)

    def test_static_maps_to_no_controller(self):
        assert make_coding_controller("static", blocks=40) is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):
            CodingController("turbo", blocks=40)


class TestAdaptiveRunnerIntegration:
    def test_controller_decisions_reach_the_session(self):
        from repro.scenario import builtin_scenario, make_policy
        from repro.scenario.runner import run_adaptive_session
        from repro.protocols.adaptive import make_planner

        network, _plan = TestCodingController()._plan(loss=0.3)
        controller = make_coding_controller(
            "adaptive", blocks=40, block_size=256
        )
        planner = make_planner("omnc", 0, 3)
        result = run_adaptive_session(
            network,
            planner,
            make_policy("oblivious"),
            builtin_scenario("calm", duration=20.0, epoch_seconds=5.0),
            config=SessionConfig(blocks=40, block_size=256),
            rng=RngFactory(3),
            coding_controller=controller,
        )
        assert controller.history
        first = controller.history[0]
        assert first.blocks < 40  # 30% loss shrinks the generation
        assert result.session.generations_decoded >= 0
        # The initial decision was folded into the session accounting.
        assert result.generation_payload_bytes == first.blocks * 256
