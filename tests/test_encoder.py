"""Source encoding and relay re-encoding."""

import numpy as np
import pytest

from repro.coding import matrix as gfm
from repro.coding.encoder import RelayReEncoder, SourceEncoder
from repro.coding.generation import GenerationParams, random_generation
from repro.coding.gf256 import GF256
from repro.coding.packet import CodedPacket


def make_source(blocks=6, block_size=16, seed=0, payload=True):
    rng = np.random.default_rng(seed)
    generation = random_generation(0, GenerationParams(blocks, block_size), rng)
    return SourceEncoder(1, generation, rng, payload=payload), generation


class TestSourceEncoder:
    def test_packet_payload_is_linear_combination(self):
        encoder, generation = make_source()
        packet = encoder.next_packet()
        expected = GF256.matmul(
            packet.coefficients[None, :], generation.matrix
        )[0]
        assert np.array_equal(packet.payload, expected)

    def test_packets_never_zero_vector(self):
        encoder, _ = make_source()
        for _ in range(50):
            assert not encoder.next_packet().is_zero()

    def test_emitted_counter(self):
        encoder, _ = make_source()
        for _ in range(5):
            encoder.next_packet()
        assert encoder.emitted == 5

    def test_coefficient_only_mode(self):
        encoder, _ = make_source(payload=False)
        packet = encoder.next_packet()
        assert packet.payload is None

    def test_n_plus_few_packets_decode(self):
        # n + 3 random packets are full rank with overwhelming probability.
        encoder, generation = make_source(blocks=8)
        vectors = [encoder.next_packet().coefficients for _ in range(11)]
        assert gfm.rank(np.stack(vectors)) == 8

    def test_advance_resets_emitted(self):
        encoder, _ = make_source()
        encoder.next_packet()
        new_gen = random_generation(
            1, GenerationParams(6, 16), np.random.default_rng(9)
        )
        encoder.advance(new_gen)
        assert encoder.emitted == 0
        assert encoder.generation.generation_id == 1

    def test_advance_must_be_monotonic(self):
        encoder, generation = make_source()
        with pytest.raises(ValueError, match="monotonically"):
            encoder.advance(generation)


class TestRelayReEncoder:
    def _packet(self, vector, payload=None, generation=0):
        return CodedPacket(
            session_id=1,
            generation_id=generation,
            coefficients=np.asarray(vector, dtype=np.uint8),
            payload=None if payload is None else np.asarray(payload, dtype=np.uint8),
        )

    def test_accepts_innovative_rejects_dependent(self):
        relay = RelayReEncoder(1, 4, np.random.default_rng(0))
        assert relay.accept(self._packet([1, 0, 0, 0]))
        assert relay.accept(self._packet([0, 1, 0, 0]))
        # Dependent: sum of the two previous vectors.
        assert not relay.accept(self._packet([1, 1, 0, 0]))
        assert relay.buffered == 2

    def test_scaled_duplicate_is_dependent(self):
        relay = RelayReEncoder(1, 4, np.random.default_rng(1))
        assert relay.accept(self._packet([2, 4, 6, 8]))
        scaled = GF256.scale_row(np.array([2, 4, 6, 8], dtype=np.uint8), 0x11)
        assert not relay.accept(self._packet(scaled))

    def test_reencoded_packet_stays_in_span(self):
        rng = np.random.default_rng(2)
        relay = RelayReEncoder(1, 5, rng)
        basis = [rng.integers(0, 256, 5, dtype=np.uint8) for _ in range(3)]
        accepted = sum(relay.accept(self._packet(v)) for v in basis)
        out = relay.next_packet()
        # The output vector must not increase the rank of the basis.
        stacked = np.vstack(basis + [out.coefficients])
        assert gfm.rank(stacked) == accepted

    def test_full_relay_stops_accepting_but_keeps_encoding(self):
        rng = np.random.default_rng(3)
        relay = RelayReEncoder(1, 3, rng)
        for vector in np.eye(3, dtype=np.uint8):
            assert relay.accept(self._packet(vector))
        assert relay.is_full
        assert not relay.accept(self._packet(rng.integers(0, 256, 3, dtype=np.uint8)))
        assert relay.next_packet() is not None

    def test_empty_relay_cannot_encode(self):
        relay = RelayReEncoder(1, 4, np.random.default_rng(4))
        with pytest.raises(RuntimeError, match="no innovative"):
            relay.next_packet()

    def test_stale_generation_rejected(self):
        relay = RelayReEncoder(1, 4, np.random.default_rng(5), generation_id=2)
        assert not relay.accept(self._packet([1, 0, 0, 0], generation=1))

    def test_newer_generation_flushes(self):
        relay = RelayReEncoder(1, 4, np.random.default_rng(6))
        relay.accept(self._packet([1, 0, 0, 0], generation=0))
        assert relay.accept(self._packet([0, 1, 0, 0], generation=3))
        assert relay.generation_id == 3
        assert relay.buffered == 1

    def test_advance_must_increase(self):
        relay = RelayReEncoder(1, 4, np.random.default_rng(7), generation_id=5)
        with pytest.raises(ValueError):
            relay.advance(5)

    def test_wrong_session_raises(self):
        relay = RelayReEncoder(1, 4, np.random.default_rng(8))
        packet = CodedPacket(2, 0, np.ones(4, dtype=np.uint8))
        with pytest.raises(ValueError, match="session"):
            relay.accept(packet)

    def test_wrong_generation_size_dropped(self):
        # Stale-sized packets are in flight whenever an adaptive-n
        # session switches generation size at a boundary; the relay
        # drops them instead of crashing.
        relay = RelayReEncoder(1, 4, np.random.default_rng(9))
        assert relay.accept(self._packet([1, 0, 0])) is False
        assert relay.buffered == 0
        assert relay.accept(self._packet([1, 0, 0, 0])) is True

    def test_payload_reencoding_consistency(self):
        # Relay payloads must remain the same linear combination as the
        # coding vector claims, relative to the original generation.
        rng = np.random.default_rng(10)
        params = GenerationParams(4, 12)
        generation = random_generation(0, params, rng)
        source = SourceEncoder(1, generation, rng)
        relay = RelayReEncoder(1, 4, rng)
        while not relay.is_full:
            relay.accept(source.next_packet())
        out = relay.next_packet()
        expected = GF256.matmul(out.coefficients[None, :], generation.matrix)[0]
        assert np.array_equal(out.payload, expected)
