"""Tests for the ``repro lint`` static-analysis pass.

Each rule gets positive (must flag) and negative (must stay silent)
fixtures; the baseline mechanism, pragma suppression and the CLI's exit
codes / JSON output are exercised end to end through ``repro.cli.main``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintConfig,
    lint_source,
    load_baseline,
    partition,
    save_baseline,
)
from repro.analysis.baseline import BaselineError
from repro.cli import main as cli_main


def rules_of(source: str, path: str = "src/repro/x.py") -> list[str]:
    return [f.rule for f in lint_source(source, path)]


class TestRPR001NoUnseededRng:
    def test_default_rng_flagged(self):
        assert rules_of("import numpy as np\nrng = np.random.default_rng()\n") == [
            "RPR001"
        ]

    def test_seeded_default_rng_still_flagged(self):
        # Even a literal seed bypasses the named-stream discipline.
        assert "RPR001" in rules_of(
            "import numpy as np\nrng = np.random.default_rng(42)\n"
        )

    def test_bare_default_rng_import_flagged(self):
        src = "from numpy.random import default_rng\nrng = default_rng(3)\n"
        assert "RPR001" in rules_of(src)

    def test_legacy_numpy_global_flagged(self):
        assert "RPR001" in rules_of("import numpy as np\nnp.random.seed(1)\n")
        assert "RPR001" in rules_of("import numpy as np\nx = np.random.rand(4)\n")

    def test_stdlib_random_flagged(self):
        assert "RPR001" in rules_of("import random\nx = random.random()\n")
        assert "RPR001" in rules_of("import random\nr = random.Random(7)\n")

    def test_generator_method_calls_allowed(self):
        src = "def f(rng):\n    return rng.integers(0, 4) + rng.exponential()\n"
        assert "RPR001" not in rules_of(src)

    def test_seed_sequence_allowed(self):
        src = "import numpy as np\nseq = np.random.SeedSequence(entropy=5)\n"
        assert "RPR001" not in rules_of(src)

    def test_rng_root_module_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rules_of(src, path="src/repro/util/rng.py") == []

    def test_rng_root_pragma(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)  # repro: rng-root\n"
        )
        assert rules_of(src) == []

    def test_rng_root_pragma_does_not_cover_other_rules(self):
        src = "import time\nt = time.time()  # repro: rng-root\n"
        assert "RPR002" in rules_of(src)


class TestRPR002NoWallclock:
    def test_time_time_flagged(self):
        assert rules_of("import time\nt = time.time()\n") == ["RPR002"]

    def test_perf_counter_flagged(self):
        assert "RPR002" in rules_of("import time\nt = time.perf_counter()\n")
        assert "RPR002" in rules_of(
            "from time import perf_counter\nt = perf_counter()\n"
        )

    def test_datetime_now_flagged(self):
        assert "RPR002" in rules_of(
            "import datetime\nnow = datetime.datetime.now()\n"
        )
        assert "RPR002" in rules_of(
            "from datetime import datetime\nnow = datetime.now()\n"
        )

    def test_obs_and_benchmarks_allowed(self):
        src = "import time\nt = time.time()\n"
        assert rules_of(src, path="src/repro/obs/metrics.py") == []
        assert rules_of(src, path="benchmarks/bench_x.py") == []

    def test_pragma_suppresses(self):
        src = "import time\nt = time.time()  # repro: ignore[RPR002]\n"
        assert rules_of(src) == []

    def test_sleep_is_not_a_clock_read(self):
        assert rules_of("import time\ntime.sleep(1)\n") == []


class TestRPR003NoSetIteration:
    def test_for_over_set_literal(self):
        assert rules_of("for x in {1, 2, 3}:\n    pass\n") == ["RPR003"]

    def test_for_over_set_call(self):
        assert "RPR003" in rules_of("for x in set([3, 1]):\n    pass\n")

    def test_comprehension_over_set_variable(self):
        src = "s = {1, 2}\nout = [x for x in s]\n"
        assert "RPR003" in rules_of(src)

    def test_dict_comprehension_over_annotated_set_param(self):
        src = (
            "def f(nodes: set[int]) -> dict[int, int]:\n"
            "    return {n: 0 for n in nodes}\n"
        )
        assert "RPR003" in rules_of(src)

    def test_set_union_operator(self):
        src = "a = {1}\nb = {2}\nfor x in a | b:\n    pass\n"
        assert "RPR003" in rules_of(src)

    def test_intersection_method(self):
        src = "def f(a: set[int], b: set[int]) -> None:\n"
        src += "    for x in a.intersection(b):\n        pass\n"
        assert "RPR003" in rules_of(src)

    def test_sorted_set_allowed(self):
        assert rules_of("for x in sorted({3, 1}):\n    pass\n") == []

    def test_list_iteration_allowed(self):
        assert rules_of("for x in [1, 2]:\n    pass\n") == []

    def test_reassignment_to_list_clears_tracking(self):
        src = "s = {1, 2}\ns = sorted(s)\nfor x in s:\n    pass\n"
        assert rules_of(src) == []

    def test_membership_tests_allowed(self):
        # Only *iteration* is order-sensitive; membership is fine.
        assert rules_of("s = {1, 2}\nok = 1 in s\n") == []


class TestRPR004NoFloatEquality:
    def test_eq_float_literal(self):
        assert rules_of("def f(x: float) -> bool:\n    return x == 1.0\n") == [
            "RPR004"
        ]

    def test_neq_float_literal(self):
        assert "RPR004" in rules_of("def f(x: float) -> bool:\n    return 0.5 != x\n")

    def test_negative_literal(self):
        assert "RPR004" in rules_of("def f(x: float) -> bool:\n    return x == -1.0\n")

    def test_int_equality_allowed(self):
        assert rules_of("def f(x: int) -> bool:\n    return x == 1\n") == []

    def test_ordering_comparisons_allowed(self):
        assert rules_of("def f(x: float) -> bool:\n    return x <= 1.0\n") == []

    def test_pragma_suppresses(self):
        src = (
            "def f(x: float) -> bool:\n"
            "    return x == 0.0  # repro: ignore[RPR004]\n"
        )
        assert rules_of(src) == []


class TestRPR005PublicApiAnnotations:
    def test_missing_return_annotation(self):
        findings = lint_source("def run(x: int):\n    return x\n")
        assert [f.rule for f in findings] == ["RPR005"]
        assert "return annotation" in findings[0].message

    def test_missing_parameter_annotation(self):
        findings = lint_source("def run(x) -> int:\n    return x\n")
        assert [f.rule for f in findings] == ["RPR005"]
        assert "x" in findings[0].message

    def test_public_method_checked_and_self_skipped(self):
        src = (
            "class Engine:\n"
            "    def step(self, dt) -> None:\n"
            "        pass\n"
        )
        assert rules_of(src) == ["RPR005"]

    def test_init_requires_return_annotation(self):
        src = "class A:\n    def __init__(self, x: int):\n        self.x = x\n"
        assert rules_of(src) == ["RPR005"]

    def test_private_and_nested_functions_skipped(self):
        src = (
            "def _helper(x):\n"
            "    return x\n"
            "def public() -> None:\n"
            "    def inner(y):\n"
            "        return y\n"
            "    inner(1)\n"
        )
        assert rules_of(src) == []

    def test_fully_annotated_passes(self):
        src = (
            "def run(x: int, *args: str, flag: bool = False, **kw: object) -> int:\n"
            "    return x\n"
        )
        assert rules_of(src) == []


class TestPragmas:
    def test_multiple_codes_in_one_pragma(self):
        src = (
            "import time\n"
            "import numpy as np\n"
            "t = [time.time(), np.random.default_rng()]"
            "  # repro: ignore[RPR001, RPR002]\n"
        )
        assert rules_of(src) == []

    def test_pragma_only_covers_its_line(self):
        src = (
            "import time\n"
            "a = time.time()  # repro: ignore[RPR002]\n"
            "b = time.time()\n"
        )
        findings = lint_source(src)
        assert [(f.rule, f.line) for f in findings] == [("RPR002", 3)]

    def test_pragma_on_continuation_line(self):
        # Black-style wrapping pushes the offending call (and its pragma)
        # past the statement's anchor line; any physical line of the
        # statement must honor the pragma.
        src = (
            "import time\n"
            "a = (\n"
            "    time.time()  # repro: ignore[RPR002]\n"
            ")\n"
        )
        assert rules_of(src) == []

    def test_pragma_on_multiline_call_arguments(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(\n"
            "    42,\n"
            ")  # repro: ignore[RPR001]\n"
        )
        assert rules_of(src) == []

    def test_continuation_pragma_does_not_leak_past_statement(self):
        src = (
            "import time\n"
            "a = (\n"
            "    time.time()  # repro: ignore[RPR002]\n"
            ")\n"
            "b = time.time()\n"
        )
        findings = lint_source(src)
        assert [(f.rule, f.line) for f in findings] == [("RPR002", 5)]

    def test_pragma_on_wrapped_signature(self):
        # RPR005 anchors on the def; a pragma on the wrapped signature's
        # closing line still counts.
        src = (
            "def run(\n"
            "    x,\n"
            "):  # repro: ignore[RPR005]\n"
            "    return x\n"
        )
        assert rules_of(src) == []


class TestBaseline:
    def make(self, rule: str = "RPR002", snippet: str = "t = time.time()") -> Finding:
        return Finding(
            rule=rule, path="src/repro/x.py", line=3, column=5,
            message="m", snippet=snippet,
        )

    def test_roundtrip(self, tmp_path: Path):
        path = tmp_path / "baseline.json"
        finding = self.make()
        save_baseline(path, [finding])
        counts = load_baseline(path)
        assert counts[finding.fingerprint()] == 1

    def test_partition_matches_and_new(self, tmp_path: Path):
        path = tmp_path / "baseline.json"
        old = self.make()
        save_baseline(path, [old])
        fresh = self.make(snippet="u = time.time()")
        new, matched, stale = partition([old, fresh], load_baseline(path))
        assert new == [fresh]
        assert matched == [old]
        assert stale == 0

    def test_multiset_semantics(self, tmp_path: Path):
        # Two identical violations, only one grandfathered: one is new.
        path = tmp_path / "baseline.json"
        save_baseline(path, [self.make()])
        duplicate = self.make()
        new, matched, stale = partition(
            [duplicate, duplicate], load_baseline(path)
        )
        assert len(new) == 1 and len(matched) == 1 and stale == 0

    def test_stale_counted(self, tmp_path: Path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [self.make(), self.make(snippet="other")])
        new, matched, stale = partition([], load_baseline(path))
        assert (new, matched, stale) == ([], [], 2)

    def test_line_numbers_do_not_affect_matching(self, tmp_path: Path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [self.make()])
        moved = Finding(
            rule="RPR002", path="src/repro/x.py", line=99, column=1,
            message="m", snippet="t = time.time()",
        )
        new, matched, _ = partition([moved], load_baseline(path))
        assert new == [] and matched == [moved]

    def test_malformed_baseline_raises(self, tmp_path: Path):
        path = tmp_path / "baseline.json"
        path.write_text("{\"version\": 99}")
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestCli:
    CLEAN = "def run(x: int) -> int:\n    return x\n"
    DIRTY = "import time\n\n\ndef run(x: int) -> float:\n    return time.time()\n"

    def test_exit_zero_on_clean_tree(self, tmp_path: Path, monkeypatch):
        (tmp_path / "clean.py").write_text(self.CLEAN)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "clean.py"]) == 0

    def test_exit_one_on_finding(self, tmp_path: Path, monkeypatch, capsys):
        (tmp_path / "dirty.py").write_text(self.DIRTY)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "dirty.py"]) == 1
        out = capsys.readouterr().out
        assert "RPR002" in out and "dirty.py:5" in out

    def test_json_output(self, tmp_path: Path, monkeypatch, capsys):
        (tmp_path / "dirty.py").write_text(self.DIRTY)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "dirty.py", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["baselined"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == "RPR002"
        assert finding["path"] == "dirty.py"
        assert finding["line"] == 5

    def test_github_format(self, tmp_path: Path, monkeypatch, capsys):
        (tmp_path / "dirty.py").write_text(self.DIRTY)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "dirty.py", "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=dirty.py,line=5" in out
        assert "title=repro-lint RPR002" in out

    def test_select_unknown_rule_is_usage_error(self, tmp_path: Path, monkeypatch):
        (tmp_path / "clean.py").write_text(self.CLEAN)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "clean.py", "--select", "RPR999"]) == 2

    def test_select_restricts_rules(self, tmp_path: Path, monkeypatch):
        (tmp_path / "dirty.py").write_text(self.DIRTY)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "dirty.py", "--select", "RPR004"]) == 0

    def test_missing_explicit_baseline_is_usage_error(
        self, tmp_path: Path, monkeypatch
    ):
        (tmp_path / "clean.py").write_text(self.CLEAN)
        monkeypatch.chdir(tmp_path)
        assert (
            cli_main(["lint", "clean.py", "--baseline", "nope.json"]) == 2
        )

    def test_baselined_finding_passes(self, tmp_path: Path, monkeypatch):
        (tmp_path / "dirty.py").write_text(self.DIRTY)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        findings = lint_source(self.DIRTY, "dirty.py")
        save_baseline(baseline, findings)
        assert (
            cli_main(["lint", "dirty.py", "--baseline", str(baseline)]) == 0
        )

    def test_update_refuses_new_findings(self, tmp_path: Path, monkeypatch):
        (tmp_path / "dirty.py").write_text(self.DIRTY)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, [])
        assert (
            cli_main(
                [
                    "lint", "dirty.py",
                    "--baseline", str(baseline),
                    "--update-baseline",
                ]
            )
            == 1
        )
        # Refused: the baseline never grows.
        assert load_baseline(baseline) == {}

    def test_update_baseline_keeps_moved_finding(
        self, tmp_path: Path, monkeypatch
    ):
        # The finding drifts to a different line; its fingerprint
        # (rule, path, snippet) is unchanged, so --update-baseline must
        # treat it as matched — neither stale-pruned nor newly refused.
        (tmp_path / "dirty.py").write_text(self.DIRTY)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, lint_source(self.DIRTY, "dirty.py"))
        (tmp_path / "dirty.py").write_text("\n\n" + self.DIRTY)
        assert (
            cli_main(
                [
                    "lint", "dirty.py",
                    "--baseline", str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert len(load_baseline(baseline)) == 1
        assert (
            cli_main(["lint", "dirty.py", "--baseline", str(baseline)]) == 0
        )

    def test_update_prunes_stale_entries(self, tmp_path: Path, monkeypatch):
        (tmp_path / "clean.py").write_text(self.CLEAN)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        ghost = Finding(
            rule="RPR002", path="clean.py", line=1, column=1,
            message="m", snippet="t = time.time()",
        )
        save_baseline(baseline, [ghost])
        assert (
            cli_main(
                [
                    "lint", "clean.py",
                    "--baseline", str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert load_baseline(baseline) == {}

    def test_stale_baseline_fails_normal_run(self, tmp_path: Path, monkeypatch):
        (tmp_path / "clean.py").write_text(self.CLEAN)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        ghost = Finding(
            rule="RPR002", path="clean.py", line=1, column=1,
            message="m", snippet="t = time.time()",
        )
        save_baseline(baseline, [ghost])
        assert (
            cli_main(["lint", "clean.py", "--baseline", str(baseline)]) == 1
        )

    def test_parse_error_fails(self, tmp_path: Path, monkeypatch, capsys):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "broken.py"]) == 1
        assert "parse failure" in capsys.readouterr().out


class TestRepoIsClean:
    def test_src_tree_has_no_findings(self):
        # The acceptance gate: the shipped tree lints clean with an
        # empty baseline — emulator/, coding/ and optimization/ carry
        # no grandfathered findings.
        repo = Path(__file__).resolve().parent.parent
        from repro.analysis.runner import lint_paths

        findings, errors, checked = lint_paths(
            [repo / "src"], repo, LintConfig()
        )
        assert errors == []
        assert checked > 60
        assert findings == []
