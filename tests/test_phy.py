"""The empirical PHY model: shape, calibration, power scaling."""

import numpy as np
import pytest

from repro.topology.phy import (
    EmpiricalPhyModel,
    PhyParams,
    high_quality_phy,
    lossy_phy,
)


class TestPhyParams:
    def test_defaults_valid(self):
        PhyParams()

    def test_threshold_must_be_interior(self):
        with pytest.raises(ValueError):
            PhyParams(range_threshold=0.0)
        with pytest.raises(ValueError):
            PhyParams(range_threshold=1.0)

    def test_plateau_above_threshold(self):
        with pytest.raises(ValueError):
            PhyParams(plateau_probability=0.1, range_threshold=0.2)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            PhyParams(shadowing_sigma=-0.1)


class TestMeanCurve:
    def setup_method(self):
        self.model = EmpiricalPhyModel(
            PhyParams(shadowing_sigma=0.0), rng=np.random.default_rng(0)
        )

    def test_plateau_near_transmitter(self):
        params = self.model.params
        assert self.model.mean_probability(0.0) == pytest.approx(
            params.plateau_probability
        )

    def test_threshold_reached_at_range(self):
        params = self.model.params
        at_range = self.model.mean_probability(params.communication_range)
        assert at_range == pytest.approx(params.range_threshold, abs=1e-9)

    def test_zero_beyond_range(self):
        assert self.model.mean_probability(
            self.model.effective_range * 1.01
        ) == 0.0

    def test_monotone_nonincreasing(self):
        distances = np.linspace(0, self.model.effective_range, 200)
        values = self.model.mean_probability_array(distances)
        assert np.all(np.diff(values) <= 1e-12)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            self.model.mean_probability(-1.0)

    def test_no_jitter_link_probability_equals_mean(self):
        d = 42.0
        assert self.model.link_probability(d) == pytest.approx(
            self.model.mean_probability(d)
        )


class TestJitterAndPower:
    def test_jitter_is_bounded(self):
        model = lossy_phy(rng=np.random.default_rng(1))
        values = [model.link_probability(50.0) for _ in range(300)]
        assert all(0.02 <= v <= 0.995 for v in values)
        assert np.std(values) > 0.01  # jitter is actually present

    def test_power_scale_extends_range(self):
        base = lossy_phy(rng=np.random.default_rng(2))
        boosted = base.with_power_scale(2.0)
        assert boosted.effective_range == pytest.approx(2 * base.params.communication_range)
        d = base.params.communication_range * 1.5
        assert base.link_probability(d) == 0.0
        assert boosted.link_probability(d) > 0.0

    def test_with_power_scale_validates(self):
        with pytest.raises(ValueError):
            lossy_phy().with_power_scale(0.0)


class TestCalibration:
    """The two named profiles must hit the paper's average qualities."""

    def _average_quality(self, factory, seed):
        from repro.topology.random_network import random_network
        from repro.util.rng import RngFactory

        rng = RngFactory(seed)
        phy = factory(rng=rng.derive("phy"))
        network = random_network(150, phy=phy, rng=rng.derive("topo"))
        return network.average_link_probability()

    def test_lossy_profile_near_058(self):
        values = [self._average_quality(lossy_phy, seed) for seed in (1, 2, 3)]
        assert 0.50 <= np.mean(values) <= 0.66

    def test_high_quality_profile_near_091(self):
        values = [self._average_quality(high_quality_phy, seed) for seed in (1, 2, 3)]
        assert 0.86 <= np.mean(values) <= 0.96
