"""The sUnicast LP and its variants."""

import pytest

from repro.optimization.problem import session_graph_from_network
from repro.optimization.sunicast import (
    solve_min_cost,
    solve_min_cost_routing,
    solve_sunicast,
    verify_feasibility,
)
from repro.topology.random_network import (
    chain_topology,
    diamond_topology,
    fig1_sample_topology,
)


class TestSolveSunicast:
    def test_chain_throughput_analytic(self):
        # Chain 0-1-2-3, all p = 0.5, every node in one collision domain
        # apart from ends: throughput is limited by the MAC constraint.
        net = chain_topology((0.5, 0.5, 0.5))
        graph = session_graph_from_network(net, 0, 3)
        solution = solve_sunicast(graph)
        assert 0.0 < solution.throughput < 0.5

    def test_single_perfect_link(self):
        net = chain_topology((1.0,))
        graph = session_graph_from_network(net, 0, 1)
        solution = solve_sunicast(graph)
        # One hop at p=1: receiver constraint b_0 <= 1 gives gamma = 1.
        assert solution.throughput == pytest.approx(1.0, abs=1e-6)

    def test_diamond_uses_both_relays(self):
        solution = solve_sunicast(
            session_graph_from_network(diamond_topology(), 0, 3)
        )
        assert solution.flows[(0, 1)] > 1e-6
        assert solution.flows[(0, 2)] > 1e-6
        assert solution.broadcast_rates[3] == pytest.approx(0.0, abs=1e-9)

    def test_diamond_beats_best_single_path(self):
        # Multipath with broadcast must beat the best single path under
        # the same MAC constraints; compute the single-path optimum by
        # removing one relay.
        full = solve_sunicast(session_graph_from_network(diamond_topology(), 0, 3))
        single = solve_sunicast(
            session_graph_from_network(
                diamond_topology(p_sv=0.01, p_vt=0.01), 0, 3
            )
        )
        assert full.throughput > single.throughput

    def test_solution_is_feasible(self):
        graph = session_graph_from_network(fig1_sample_topology(), 0, 5)
        solution = solve_sunicast(graph)
        violations = verify_feasibility(graph, solution)
        assert all(v == 0.0 for v in violations.values()), violations

    def test_union_constraint_binds_on_funnel(self):
        # One relay fanning to two receivers: without (5b) the LP could
        # count one broadcast twice.  gamma through the funnel must not
        # exceed b_relay * union probability.
        net = chain_topology((0.9, 0.6, 0.9), overhearing={(1, 3): 0.5})
        graph = session_graph_from_network(net, 0, 3)
        solution = solve_sunicast(graph)
        outflow = solution.flows[(1, 2)] + solution.flows[(1, 3)]
        union = graph.union_probability(1)
        assert outflow <= solution.broadcast_rates[1] * union + 1e-6

    def test_active_helpers(self):
        solution = solve_sunicast(
            session_graph_from_network(diamond_topology(), 0, 3)
        )
        assert set(solution.active_nodes()) >= {0}
        assert all(x > 1e-6 for x in
                   (solution.flows[l] for l in solution.active_links()))


class TestMinCost:
    def test_min_cost_scales_with_throughput(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        small = solve_min_cost(graph, throughput=1e-4)
        large = solve_min_cost(graph, throughput=2e-4)
        assert large.objective == pytest.approx(2 * small.objective, rel=1e-3)

    def test_min_cost_routing_concentrates_on_best_path(self):
        # Diamond with one clearly better path: routing-cost semantics
        # should leave the bad relay unused.
        net = diamond_topology(p_su=0.9, p_ut=0.9, p_sv=0.3, p_vt=0.3)
        graph = session_graph_from_network(net, 0, 3)
        solution = solve_min_cost_routing(graph)
        assert solution.flows[(0, 2)] == pytest.approx(0.0, abs=1e-9)
        assert solution.flows[(0, 1)] > 0

    def test_min_cost_routing_rates_are_transmission_counts(self):
        net = chain_topology((0.5, 0.5))
        graph = session_graph_from_network(net, 0, 2)
        gamma = 1e-3
        solution = solve_min_cost_routing(graph, throughput=gamma)
        # Each hop costs 1/0.5 = 2 transmissions per unit flow.
        assert solution.broadcast_rates[0] == pytest.approx(2 * gamma, rel=1e-6)
        assert solution.broadcast_rates[1] == pytest.approx(2 * gamma, rel=1e-6)

    def test_min_cost_routing_cheaper_than_per_link_objective(self):
        # The broadcast-shared variant can only do better or equal.
        graph = session_graph_from_network(fig1_sample_topology(), 0, 5)
        routing = solve_min_cost_routing(graph, throughput=1e-3)
        shared = solve_min_cost(graph, throughput=1e-3)
        assert shared.objective <= routing.objective + 1e-9

    def test_invalid_throughput(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        with pytest.raises(ValueError):
            solve_min_cost(graph, throughput=0)
        with pytest.raises(ValueError):
            solve_min_cost_routing(graph, throughput=-1)


class TestVerifyFeasibility:
    def test_detects_flow_violation(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        solution = solve_sunicast(graph)
        broken = type(solution)(
            throughput=solution.throughput + 0.5,
            flows=solution.flows,
            broadcast_rates=solution.broadcast_rates,
            objective=0.0,
        )
        violations = verify_feasibility(graph, broken)
        assert violations["flow_conservation"] > 0

    def test_detects_mac_violation(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        solution = solve_sunicast(graph)
        broken = type(solution)(
            throughput=solution.throughput,
            flows=solution.flows,
            broadcast_rates={n: 1.0 for n in solution.broadcast_rates},
            objective=0.0,
        )
        violations = verify_feasibility(graph, broken)
        assert violations["mac"] > 0
