"""Inter-session XOR relaying: pairing rule, peeling, airtime saving."""

import pytest

from repro.emulator.multisession import run_multi_session
from repro.emulator.node import (
    FlowDestinationRuntime,
    FlowSourceRuntime,
    InterSessionXorRelay,
    MultiSessionNodeRuntime,
    XorPacket,
)
from repro.emulator.session import SessionConfig
from repro.protocols.etx_routing import plan_etx_route
from repro.protocols.intersession import (
    plan_intersession_pairs,
    relay_transmit_budget,
)
from repro.protocols.more import plan_more
from repro.topology.graph import WirelessNetwork
from repro.util.rng import RngFactory


def alice_bob_network():
    """A(0) -- R(1) -- B(2): all in carrier-sense range, no A-B link."""
    positions = [[0.0, 0.0], [60.0, 0.0], [120.0, 0.0]]
    quality = 0.85
    links = {
        (0, 1): quality,
        (1, 0): quality,
        (1, 2): quality,
        (2, 1): quality,
    }
    return WirelessNetwork(positions, links, 130.0)


def opposing_plans(network):
    return {1: plan_more(network, 0, 2), 2: plan_more(network, 2, 0)}


def _xor_config(**overrides):
    defaults = dict(
        blocks=8, block_size=256, max_seconds=60.0, target_generations=4
    )
    defaults.update(overrides)
    return SessionConfig(**defaults)


class TestPairingRule:
    def test_alice_bob_relay_qualifies(self):
        network = alice_bob_network()
        pairs = plan_intersession_pairs(opposing_plans(network))
        assert pairs == {1: ((1, 2),)}

    def test_same_direction_flows_do_not_pair(self):
        # Both sessions flow A -> B: the relay's downstream contains
        # neither session's source, so XORs would be undecodable.
        network = alice_bob_network()
        plans = {1: plan_more(network, 0, 2), 2: plan_more(network, 0, 2)}
        assert plan_intersession_pairs(plans) == {}

    def test_unicast_plan_rejected(self):
        network = alice_bob_network()
        plans = opposing_plans(network)
        plans[2] = plan_etx_route(network, 2, 0)
        with pytest.raises(TypeError, match="coded"):
            plan_intersession_pairs(plans)

    def test_budget_helper_matches_plan_kind(self):
        network = alice_bob_network()
        plans = opposing_plans(network)
        assert relay_transmit_budget(plans[1], 1) > 0
        assert relay_transmit_budget(plans[1], 0) == 0.0  # source: no credit


class TestXorRelayDataPlane:
    def _packet(self, node_id, session_id):
        source = FlowSourceRuntime(
            node_id, session_id, blocks=4, rate_bps=4096.0, packet_bytes=256
        )
        source.on_slot(1.0)
        return source, source.pop_transmission()

    def test_pop_prefers_xor_when_both_queues_backlogged(self):
        relay = InterSessionXorRelay(1, pairs=((1, 2),))
        for sid in (1, 2):
            source, _ = self._packet(1, sid)
            relay.add_session(sid, source)
        packet = relay.pop_transmission()
        assert isinstance(packet, XorPacket)
        assert packet.session_ids == (1, 2)
        assert relay.xor_transmissions == 1

    def test_pop_falls_back_when_one_side_dry(self):
        relay = InterSessionXorRelay(1, pairs=((1, 2),))
        source, _ = self._packet(1, 1)
        relay.add_session(1, source)
        dry = FlowSourceRuntime(
            1, 2, blocks=4, rate_bps=4096.0, packet_bytes=256
        )
        relay.add_session(2, dry)  # never ticked: empty queue
        packet = relay.pop_transmission()
        assert not isinstance(packet, XorPacket)
        assert packet.session_id == 1
        assert relay.xor_transmissions == 0

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            InterSessionXorRelay(1, pairs=((1, 1),))

    def test_receiver_peels_only_with_native_knowledge(self):
        # Node 0 is session 1's source and session 2's destination — it
        # can peel session 2 out of a (1 xor 2) combination.  A bystander
        # hosting only session 2 cannot.
        _, packet_1 = self._packet(0, 1)
        _, packet_2 = self._packet(2, 2)
        combined = XorPacket((packet_1, packet_2))

        alice = MultiSessionNodeRuntime(0)
        source_1 = FlowSourceRuntime(
            0, 1, blocks=4, rate_bps=4096.0, packet_bytes=256
        )
        alice.add_session(1, source_1)
        alice.add_session(
            2,
            FlowDestinationRuntime(0, 2, 4, on_decoded=lambda g: None),
        )
        alice.on_receive(combined, sender=1)
        assert alice.session_stats()[2]["delivered_links"] == [(1, 0)]

        bystander = MultiSessionNodeRuntime(3)
        bystander.add_session(
            2,
            FlowDestinationRuntime(3, 2, 4, on_decoded=lambda g: None),
        )
        bystander.on_receive(combined, sender=1)
        assert bystander.session_stats()[2]["delivered_links"] == []


class TestAliceBobEndToEnd:
    def test_xor_relay_saves_airtime(self):
        network = alice_bob_network()
        plans = opposing_plans(network)
        pairs = plan_intersession_pairs(plans)
        outcomes = {}
        for label, xor_pairs in (("off", None), ("on", pairs)):
            outcomes[label] = run_multi_session(
                network,
                plans,
                config=_xor_config(),
                rng=RngFactory(2008),
                xor_pairs=xor_pairs,
            )
        baseline, coded = outcomes["off"], outcomes["on"]
        # Both variants complete the workload...
        for outcome in (baseline, coded):
            for result in outcome.sessions.values():
                assert result.generations_decoded >= 4
        # ...but the XOR relay does it in measurably fewer slots.
        assert coded.xor_transmissions > 0
        assert coded.transmissions < baseline.transmissions
        assert baseline.xor_transmissions == 0
