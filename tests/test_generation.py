"""Generations: framing, padding, splitting, identity."""

import numpy as np
import pytest

from repro.coding.generation import (
    Generation,
    GenerationParams,
    random_generation,
    split_into_generations,
)


class TestGenerationParams:
    def test_paper_defaults(self):
        params = GenerationParams()
        assert params.blocks == 40
        assert params.block_size == 1024
        assert params.generation_bytes == 40 * 1024

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GenerationParams(blocks=0)
        with pytest.raises(ValueError):
            GenerationParams(block_size=-1)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            GenerationParams(blocks=True)


class TestGeneration:
    def test_matrix_is_read_only(self):
        gen = random_generation(0, GenerationParams(4, 8), np.random.default_rng(0))
        with pytest.raises(ValueError):
            gen.matrix[0, 0] = 1

    def test_constructor_copies_input(self):
        data = np.ones((2, 3), dtype=np.uint8)
        gen = Generation(0, data)
        data[0, 0] = 99
        assert gen.matrix[0, 0] == 1

    def test_round_trip_bytes(self):
        params = GenerationParams(3, 16)
        payload = bytes(range(48))
        gen = Generation.from_bytes(5, payload, params)
        assert gen.to_bytes() == payload
        assert gen.generation_id == 5

    def test_from_bytes_pads_short_data(self):
        params = GenerationParams(2, 8)
        gen = Generation.from_bytes(0, b"abc", params)
        assert gen.to_bytes() == b"abc" + b"\x00" * 13

    def test_from_bytes_rejects_oversize(self):
        params = GenerationParams(1, 4)
        with pytest.raises(ValueError, match="exceeds"):
            Generation.from_bytes(0, b"12345", params)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Generation(-1, np.zeros((1, 1), dtype=np.uint8))

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            Generation(0, np.zeros((0, 4), dtype=np.uint8))

    def test_equality(self):
        m = np.arange(6, dtype=np.uint8).reshape(2, 3)
        assert Generation(1, m) == Generation(1, m)
        assert Generation(1, m) != Generation(2, m)

    def test_params_recovered_from_matrix(self):
        gen = Generation(0, np.zeros((7, 11), dtype=np.uint8))
        assert gen.params == GenerationParams(blocks=7, block_size=11)


class TestSplit:
    def test_split_multiple_generations(self):
        params = GenerationParams(2, 4)
        data = bytes(range(20))  # 2.5 generations of 8 bytes
        generations = split_into_generations(data, params)
        assert len(generations) == 3
        assert [g.generation_id for g in generations] == [0, 1, 2]
        rejoined = b"".join(g.to_bytes() for g in generations)
        assert rejoined[: len(data)] == data

    def test_split_empty_data_gives_one_padded_generation(self):
        generations = split_into_generations(b"", GenerationParams(1, 4))
        assert len(generations) == 1
        assert generations[0].to_bytes() == b"\x00" * 4

    def test_split_start_id(self):
        generations = split_into_generations(
            b"x" * 8, GenerationParams(1, 4), start_id=10
        )
        assert [g.generation_id for g in generations] == [10, 11]

    def test_split_negative_start_rejected(self):
        with pytest.raises(ValueError):
            split_into_generations(b"x", GenerationParams(1, 4), start_id=-1)


class TestRandomGeneration:
    def test_shape_and_determinism(self):
        params = GenerationParams(4, 16)
        g1 = random_generation(0, params, np.random.default_rng(42))
        g2 = random_generation(0, params, np.random.default_rng(42))
        assert g1 == g2
        assert g1.matrix.shape == (4, 16)
