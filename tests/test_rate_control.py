"""The distributed rate control algorithm (paper Table 1)."""

import pytest

from repro.optimization.problem import session_graph_from_network
from repro.optimization.rate_control import (
    RateControlAlgorithm,
    RateControlConfig,
    feasible_scaling,
)
from repro.optimization.sub1_routing import Sub1Router
from repro.optimization.sub2_rates import Sub2RateAllocator
from repro.optimization.subgradient import ConstantStepSize
from repro.optimization.sunicast import solve_sunicast, verify_feasibility
from repro.topology.random_network import (
    diamond_topology,
    fig1_sample_topology,
)


def fig1_graph():
    return session_graph_from_network(fig1_sample_topology(), 0, 5)


class TestSub1:
    def test_zero_prices_give_capped_gamma(self):
        graph = fig1_graph()
        router = Sub1Router(graph, gamma_cap=1.0)
        iterate = router.step({link: 0.0 for link in graph.links})
        assert iterate.gamma == 1.0
        assert iterate.path[0] == graph.source
        assert iterate.path[-1] == graph.destination

    def test_gamma_is_inverse_path_cost(self):
        graph = fig1_graph()
        router = Sub1Router(graph, gamma_cap=1.0)
        prices = {link: 2.0 for link in graph.links}
        iterate = router.step(prices)
        assert iterate.gamma == pytest.approx(1.0 / iterate.path_cost)

    def test_flows_live_on_path_only(self):
        graph = fig1_graph()
        router = Sub1Router(graph)
        iterate = router.step({link: 1.0 for link in graph.links})
        hops = set(zip(iterate.path, iterate.path[1:]))
        for link, value in iterate.flows.items():
            if link in hops:
                assert value == iterate.gamma
            else:
                assert value == 0.0

    def test_recovery_averages(self):
        graph = fig1_graph()
        router = Sub1Router(graph, recovery_tail=1.0)
        router.step({link: 0.0 for link in graph.links})
        router.step({link: 10.0 for link in graph.links})
        gamma_bar = router.recovered_gamma
        assert 0 < gamma_bar < 1.0

    def test_negative_price_rejected(self):
        graph = fig1_graph()
        router = Sub1Router(graph)
        bad = {link: 0.0 for link in graph.links}
        bad[graph.links[0]] = -1.0
        with pytest.raises(ValueError):
            router.step(bad)

    def test_no_recovery_mode_returns_last(self):
        graph = fig1_graph()
        router = Sub1Router(graph, primal_recovery=False)
        router.step({link: 0.0 for link in graph.links})
        assert router.recovered_gamma == router.last_iterate.gamma


class TestSub2:
    def test_rates_start_small_and_destination_zero(self):
        graph = fig1_graph()
        allocator = Sub2RateAllocator(graph, initial_rate=0.01)
        rates = allocator.rates
        assert rates[graph.destination] == 0.0
        assert all(r == 0.01 for n, r in rates.items() if n != graph.destination)

    def test_high_prices_push_rates_up(self):
        graph = fig1_graph()
        allocator = Sub2RateAllocator(graph)
        prices = {link: 5.0 for link in graph.links}
        for _ in range(5):
            allocator.step(prices, 0.1)
        transmitters = {i for (i, _) in graph.links}
        assert any(allocator.rates[n] > 0.01 for n in transmitters)

    def test_congestion_prices_react_to_overload(self):
        graph = fig1_graph()
        allocator = Sub2RateAllocator(graph, initial_rate=0.9)
        prices = {link: 0.0 for link in graph.links}
        iterate = allocator.step(prices, 0.5)
        # Everyone at 0.9 massively violates the MAC constraint.
        assert iterate.worst_violation > 0
        assert any(beta > 0 for beta in iterate.congestion_prices.values())

    def test_rates_bounded(self):
        graph = fig1_graph()
        allocator = Sub2RateAllocator(graph)
        prices = {link: 100.0 for link in graph.links}
        for _ in range(20):
            allocator.step(prices, 0.1)
        assert all(0.0 <= r <= 1.0 for r in allocator.rates.values())

    def test_invalid_step_size(self):
        graph = fig1_graph()
        allocator = Sub2RateAllocator(graph)
        with pytest.raises(ValueError):
            allocator.step({}, 0.0)

    def test_union_prices_enter_weights(self):
        graph = fig1_graph()
        a = Sub2RateAllocator(graph)
        b = Sub2RateAllocator(graph)
        prices = {link: 0.0 for link in graph.links}
        a.step(prices, 0.1)
        b.step(prices, 0.1, {graph.source: 5.0})
        assert b.rates[graph.source] > a.rates[graph.source]


class TestRateControl:
    def test_tracks_lp_optimum_on_fig1(self):
        graph = fig1_graph()
        lp = solve_sunicast(graph)
        result = RateControlAlgorithm(graph).run()
        assert result.converged
        assert result.throughput == pytest.approx(lp.throughput, rel=0.15)

    def test_tracks_lp_optimum_on_diamond(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        lp = solve_sunicast(graph)
        result = RateControlAlgorithm(graph).run()
        assert result.throughput == pytest.approx(lp.throughput, rel=0.2)

    def test_recovered_allocation_nearly_feasible(self):
        graph = fig1_graph()
        result = RateControlAlgorithm(graph).run()
        violations = verify_feasibility(
            graph, result.as_solution(), tolerance=0.05
        )
        assert violations["mac"] == 0.0
        assert violations["loss_coupling"] <= 0.05

    def test_history_lengths_match_iterations(self):
        graph = fig1_graph()
        result = RateControlAlgorithm(graph).run()
        assert len(result.rate_history) == result.iterations
        assert len(result.gamma_history) == result.iterations

    def test_denormalization_helpers(self):
        graph = fig1_graph()
        result = RateControlAlgorithm(graph).run()
        bps = result.rates_bytes_per_second()
        for node, rate in result.broadcast_rates.items():
            assert bps[node] == pytest.approx(rate * graph.capacity)
        assert result.throughput_bytes_per_second() == pytest.approx(
            result.throughput * graph.capacity
        )

    def test_max_iterations_respected(self):
        graph = fig1_graph()
        config = RateControlConfig(max_iterations=5, min_iterations=1)
        result = RateControlAlgorithm(graph, config).run()
        assert result.iterations == 5
        assert not result.converged

    def test_constant_step_size_supported(self):
        graph = fig1_graph()
        config = RateControlConfig(
            step_size=ConstantStepSize(0.05), max_iterations=50, min_iterations=1
        )
        result = RateControlAlgorithm(graph, config).run()
        assert result.iterations <= 50

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RateControlConfig(max_iterations=0)
        with pytest.raises(ValueError):
            RateControlConfig(min_iterations=100, max_iterations=10)
        with pytest.raises(ValueError):
            RateControlConfig(tolerance=0)
        with pytest.raises(ValueError):
            RateControlConfig(patience=0)
        with pytest.raises(ValueError):
            RateControlConfig(recovery_tail=0)

    def test_union_prices_exposed(self):
        graph = fig1_graph()
        algorithm = RateControlAlgorithm(graph)
        for _ in range(10):
            algorithm.step()
        assert set(algorithm.union_prices) == set(graph.transmitters())


class TestFeasibleScaling:
    def test_feasible_rates_untouched(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        rates = {n: 0.1 for n in graph.nodes}
        scaled, factor = feasible_scaling(graph, rates)
        assert factor == 1.0
        assert scaled == rates

    def test_overload_scaled_down(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        rates = {n: 0.9 for n in graph.nodes}
        scaled, factor = feasible_scaling(graph, rates)
        assert factor > 1.0
        for node in graph.mac_constrained_nodes():
            load = scaled.get(node, 0.0) + sum(
                scaled.get(j, 0.0) for j in graph.neighbors[node]
            )
            assert load <= 1.0 + 1e-9

    def test_saturate_scales_up(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        rates = {n: 0.05 for n in graph.nodes}
        scaled, factor = feasible_scaling(graph, rates, saturate=True)
        assert factor < 1.0
        assert all(scaled[n] >= rates[n] for n in rates)

    def test_saturate_respects_cap(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        rates = {n: 0.001 for n in graph.nodes}
        scaled, factor = feasible_scaling(
            graph, rates, saturate=True, max_scale_up=2.0
        )
        assert factor == pytest.approx(0.5)

    def test_zero_rates_pass_through(self):
        graph = session_graph_from_network(diamond_topology(), 0, 3)
        scaled, factor = feasible_scaling(graph, {n: 0.0 for n in graph.nodes})
        assert factor == 1.0
