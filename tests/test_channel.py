"""The lossy broadcast channel."""

import numpy as np
import pytest

from repro.emulator.channel import LossyBroadcastChannel
from repro.topology.random_network import chain_topology, diamond_topology


class TestBroadcast:
    def test_delivery_rate_matches_probability(self):
        net = chain_topology((0.3,))
        channel = LossyBroadcastChannel(net, rng=np.random.default_rng(0))
        delivered = sum(
            1 for _ in range(5000) if channel.broadcast(0, [1])
        )
        assert delivered / 5000 == pytest.approx(0.3, abs=0.03)

    def test_broadcast_reaches_multiple_receivers_independently(self):
        net = diamond_topology(p_su=1.0, p_sv=1.0)
        channel = LossyBroadcastChannel(net, rng=np.random.default_rng(1))
        assert set(channel.broadcast(0, [1, 2])) == {1, 2}

    def test_unlinked_receiver_never_hears(self):
        net = chain_topology((0.9,))
        channel = LossyBroadcastChannel(net, rng=np.random.default_rng(2))
        for _ in range(100):
            assert 0 not in channel.broadcast(1, [0])

    def test_counters(self):
        net = chain_topology((1.0,))
        channel = LossyBroadcastChannel(net, rng=np.random.default_rng(3))
        channel.broadcast(0, [1])
        channel.broadcast(0, [1])
        assert channel.transmissions == 2
        assert channel.deliveries == 2

    def test_empty_receiver_list(self):
        net = chain_topology((0.9,))
        channel = LossyBroadcastChannel(net, rng=np.random.default_rng(4))
        assert channel.broadcast(0, []) == ()
        assert channel.transmissions == 1


class TestUnicast:
    def test_success_rate(self):
        net = chain_topology((0.7,))
        channel = LossyBroadcastChannel(net, rng=np.random.default_rng(5))
        successes = sum(channel.unicast(0, 1) for _ in range(5000))
        assert successes / 5000 == pytest.approx(0.7, abs=0.03)

    def test_dead_link_always_fails(self):
        net = chain_topology((0.9,))
        channel = LossyBroadcastChannel(net, rng=np.random.default_rng(6))
        assert not channel.unicast(1, 0)

    def test_determinism_with_seeded_rng(self):
        net = chain_topology((0.5,))
        a = LossyBroadcastChannel(net, rng=np.random.default_rng(7))
        b = LossyBroadcastChannel(net, rng=np.random.default_rng(7))
        outcomes_a = [a.unicast(0, 1) for _ in range(50)]
        outcomes_b = [b.unicast(0, 1) for _ in range(50)]
        assert outcomes_a == outcomes_b
