"""Cross-module property-based tests (hypothesis).

These complement the per-module suites with randomized invariants that
span layers: coding survives arbitrary loss patterns, node selection
always yields DAGs, the scheduler never violates conflicts, and the
optimizer's LP dominates its own distributed approximation's feasible
region.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.decoder import ProgressiveDecoder
from repro.coding.encoder import RelayReEncoder, SourceEncoder
from repro.coding.generation import GenerationParams, random_generation
from repro.emulator.scheduler import ConflictGraph, IdealMacScheduler
from repro.optimization.problem import (
    session_graph_from_network,
    session_graph_from_selection,
)
from repro.optimization.sunicast import solve_sunicast
from repro.routing.node_selection import NodeSelectionError, select_forwarders
from repro.topology.random_network import chain_topology, random_network
from repro.util.rng import RngFactory


class TestCodingUnderArbitraryLoss:
    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=0.0, max_value=0.7),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_decoding_always_succeeds_eventually(self, blocks, loss, seed):
        rng = np.random.default_rng(seed)
        generation = random_generation(0, GenerationParams(blocks, 8), rng)
        encoder = SourceEncoder(1, generation, rng)
        decoder = ProgressiveDecoder(blocks, 8)
        attempts = 0
        while not decoder.is_complete:
            attempts += 1
            assert attempts < 5000
            packet = encoder.next_packet()
            if rng.random() < loss:
                continue
            decoder.add_packet(packet)
        assert np.array_equal(decoder.decode(), generation.matrix)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_relay_buffer_rank_never_exceeds_seen_packets(self, seed):
        rng = np.random.default_rng(seed)
        generation = random_generation(0, GenerationParams(6, 8), rng)
        encoder = SourceEncoder(1, generation, rng)
        relay = RelayReEncoder(1, 6, rng)
        offered = 0
        while not relay.is_full and offered < 50:
            relay.accept(encoder.next_packet())
            offered += 1
            assert relay.buffered <= min(offered, 6)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_reencoded_stream_decodes_to_original(self, seed):
        rng = np.random.default_rng(seed)
        generation = random_generation(0, GenerationParams(5, 12), rng)
        encoder = SourceEncoder(1, generation, rng)
        relay = RelayReEncoder(1, 5, rng)
        while not relay.is_full:
            relay.accept(encoder.next_packet())
        decoder = ProgressiveDecoder(5, 12)
        guard = 0
        while not decoder.is_complete:
            guard += 1
            assert guard < 1000
            decoder.add_packet(relay.next_packet())
        assert np.array_equal(decoder.decode(), generation.matrix)


class TestSelectionProperties:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_selection_yields_acyclic_strictly_decreasing_dag(self, seed):
        network = random_network(60, rng=RngFactory(seed).derive("t"))
        found = 0
        for source in range(0, 60, 7):
            for destination in range(3, 60, 11):
                if source == destination:
                    continue
                try:
                    result = select_forwarders(network, source, destination)
                except NodeSelectionError:
                    continue
                found += 1
                for i, j in result.dag_links:
                    assert result.etx_distance[j] < result.etx_distance[i]
                if found >= 3:
                    return

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_session_graph_lp_feasible_whenever_selection_succeeds(self, seed):
        network = random_network(50, rng=RngFactory(seed).derive("t"))
        for source in range(0, 50, 13):
            for destination in range(5, 50, 17):
                if source == destination:
                    continue
                try:
                    forwarders = select_forwarders(network, source, destination)
                except NodeSelectionError:
                    continue
                graph = session_graph_from_selection(network, forwarders)
                solution = solve_sunicast(graph)
                assert solution.throughput >= 0
                return


class TestSchedulerProperties:
    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_grants_always_independent(self, seed, hops):
        probabilities = tuple([0.5] * hops)
        network = chain_topology(probabilities)
        participants = list(range(hops + 1))
        graph = ConflictGraph(network, participants)
        scheduler = IdealMacScheduler(graph, rng=np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        for _ in range(20):
            backlogs = {
                n: float(rng.integers(0, 3)) for n in participants
            }
            weights = {n: float(rng.uniform(0.05, 2.0)) for n in participants}
            granted = scheduler.schedule(backlogs, weights)
            assert graph.is_independent(granted)
            for node in granted:
                assert backlogs[node] > 0


class TestLpMonotonicity:
    @given(st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=10, deadline=None)
    def test_throughput_monotone_in_link_quality(self, p):
        base = chain_topology((p, 0.6))
        better = chain_topology((min(p + 0.05, 0.95), 0.6))
        gamma_base = solve_sunicast(
            session_graph_from_network(base, 0, 2)
        ).throughput
        gamma_better = solve_sunicast(
            session_graph_from_network(better, 0, 2)
        ).throughput
        assert gamma_better >= gamma_base - 1e-9

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_5b_only_tightens(self, seed):
        network = random_network(40, rng=RngFactory(seed).derive("t"))
        for source in range(0, 40, 9):
            for destination in range(4, 40, 11):
                if source == destination:
                    continue
                try:
                    forwarders = select_forwarders(network, source, destination)
                except NodeSelectionError:
                    continue
                graph = session_graph_from_selection(network, forwarders)
                with_5b = solve_sunicast(graph).throughput
                without_5b = solve_sunicast(
                    graph, broadcast_information=False
                ).throughput
                assert with_5b <= without_5b + 1e-9
                return
