"""Batch/incremental equivalence properties for the hot-path kernels.

The batched entry points (``ProgressiveDecoder.add_rows``,
``SourceEncoder.next_packets``, ``RelayReEncoder.next_packets``,
``CodedPacket.batch_from_rows``) are performance rewrites of the
single-item APIs — they must be observationally equivalent.  These
hypothesis properties pin that down: identical ranks, pivot structure,
per-row verdicts, and decoded generations, under arbitrary row orders
including shuffles and duplicates.

Note on the encoders: a batched ``(k, n)`` RNG draw does not consume the
generator's stream the same way as ``k`` sequential draws, so the
guarantee is *decode equivalence* (every emitted batch decodes to the
same generation with full rank), not byte equality of the packets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.decoder import ProgressiveDecoder
from repro.coding.encoder import RelayReEncoder, SourceEncoder
from repro.coding.generation import GenerationParams, random_generation
from repro.coding.packet import CodedPacket


def _augmented_rows(blocks, block_size, count, rng, *, duplicate_fraction=0.3):
    """Random augmented rows consistent with one generation.

    Rows are coded packets of a shared generation so that rank can
    saturate; a fraction are exact duplicates of earlier rows to
    exercise the redundant paths.
    """
    generation = random_generation(0, GenerationParams(blocks, block_size), rng)
    vectors = rng.integers(0, 256, size=(count, blocks), dtype=np.uint8)
    from repro.coding.gf256 import GF256

    payloads = GF256.matmul(vectors, generation.matrix)
    rows = np.concatenate([vectors, payloads], axis=1)
    for index in range(1, count):
        if rng.random() < duplicate_fraction:
            rows[index] = rows[rng.integers(0, index)]
    return generation, rows


class TestAddRowsEquivalence:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_batched_and_incremental_decoders_agree(
        self, blocks, block_size, count, chunk, seed
    ):
        rng = np.random.default_rng(seed)
        generation, rows = _augmented_rows(blocks, block_size, count, rng)

        batched = ProgressiveDecoder(blocks, block_size)
        incremental = ProgressiveDecoder(blocks, block_size)

        batch_verdicts = []
        for start in range(0, count, chunk):
            batch_verdicts.extend(
                batched.add_rows(rows[start : start + chunk]).tolist()
            )
        one_by_one = [incremental.add_row(row) for row in rows]

        assert batch_verdicts == one_by_one
        assert batched.rank == incremental.rank
        assert batched.received == incremental.received
        assert batched.redundant == incremental.redundant
        assert np.array_equal(
            batched.coefficient_matrix(), incremental.coefficient_matrix()
        )
        assert np.array_equal(
            batched._pivot_cols[: batched.rank],
            incremental._pivot_cols[: incremental.rank],
        )
        if batched.is_complete:
            assert np.array_equal(batched.decode(), generation.matrix)
            assert np.array_equal(incremental.decode(), generation.matrix)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_shuffled_batches_reach_the_same_rank_and_decode(self, seed):
        rng = np.random.default_rng(seed)
        blocks, block_size = 6, 8
        generation, rows = _augmented_rows(blocks, block_size, 12, rng)

        in_order = ProgressiveDecoder(blocks, block_size)
        in_order.add_rows(rows)
        shuffled = ProgressiveDecoder(blocks, block_size)
        shuffled.add_rows(rng.permutation(rows))

        assert in_order.rank == shuffled.rank
        if in_order.is_complete:
            assert np.array_equal(shuffled.decode(), generation.matrix)

    def test_whole_batch_of_duplicates_yields_rank_one(self):
        rng = np.random.default_rng(7)
        generation, rows = _augmented_rows(4, 4, 1, rng, duplicate_fraction=0.0)
        decoder = ProgressiveDecoder(4, 4)
        verdicts = decoder.add_rows(np.repeat(rows, 5, axis=0))
        assert verdicts.tolist() == [True, False, False, False, False]
        assert decoder.rank == 1

    def test_add_rows_does_not_mutate_the_caller_batch_by_default(self):
        rng = np.random.default_rng(11)
        _, rows = _augmented_rows(4, 4, 6, rng)
        before = rows.copy()
        ProgressiveDecoder(4, 4).add_rows(rows)
        assert np.array_equal(rows, before)


class TestEncoderBatchEquivalence:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_source_next_packets_decodes_like_sequential_emission(
        self, blocks, extra, seed
    ):
        generation = random_generation(
            0, GenerationParams(blocks, 8), np.random.default_rng(seed)
        )
        count = blocks + extra

        sequential = SourceEncoder(1, generation, np.random.default_rng(seed))
        single = [sequential.next_packet() for _ in range(count)]
        batched_encoder = SourceEncoder(1, generation, np.random.default_rng(seed))
        batched = batched_encoder.next_packets(count)

        assert len(batched) == count
        assert sequential.emitted == batched_encoder.emitted == count
        for packet in batched:
            assert packet.session_id == 1
            assert packet.generation_id == generation.generation_id
            assert packet.coefficients.any()

        for packets in (single, batched):
            decoder = ProgressiveDecoder(blocks, 8)
            decoder.add_packets(packets)
            assert decoder.rank == min(count, blocks)
            if decoder.is_complete:
                assert np.array_equal(decoder.decode(), generation.matrix)

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_relay_next_packets_stays_in_the_received_span(self, blocks, seed):
        rng = np.random.default_rng(seed)
        generation = random_generation(0, GenerationParams(blocks, 8), rng)
        source = SourceEncoder(1, generation, rng)
        relay = RelayReEncoder(1, blocks, np.random.default_rng(seed + 1))
        while not relay.is_full:
            relay.accept(source.next_packet())

        packets = relay.next_packets(3 * blocks)
        assert len(packets) == 3 * blocks
        decoder = ProgressiveDecoder(blocks, 8)
        decoder.add_packets(packets)
        # Recombinations span exactly what the relay buffered (full rank
        # here), and the payloads stay consistent with the generation.
        assert decoder.is_complete
        assert np.array_equal(decoder.decode(), generation.matrix)

    def test_relay_next_packets_requires_buffered_packets(self):
        relay = RelayReEncoder(1, 4, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            relay.next_packets(2)


class TestBatchFromRows:
    def test_rows_become_read_only_views_of_the_input(self):
        rng = np.random.default_rng(3)
        coefficients = rng.integers(0, 256, size=(5, 4), dtype=np.uint8)
        payloads = rng.integers(0, 256, size=(5, 16), dtype=np.uint8)
        packets = CodedPacket.batch_from_rows(2, 7, coefficients, payloads)

        assert len(packets) == 5
        for index, packet in enumerate(packets):
            assert packet.session_id == 2
            assert packet.generation_id == 7
            assert np.array_equal(packet.coefficients, coefficients[index])
            assert np.array_equal(packet.payload, payloads[index])
            assert not packet.coefficients.flags.writeable
            assert not packet.payload.flags.writeable

    def test_payloads_are_optional(self):
        coefficients = np.eye(3, dtype=np.uint8)
        packets = CodedPacket.batch_from_rows(1, 0, coefficients)
        assert all(packet.payload is None for packet in packets)

    def test_mismatched_payload_rows_are_rejected(self):
        coefficients = np.eye(3, dtype=np.uint8)
        payloads = np.zeros((2, 8), dtype=np.uint8)
        with pytest.raises(ValueError):
            CodedPacket.batch_from_rows(1, 0, coefficients, payloads)
