"""Coded packet format and wire serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.packet import HEADER_BYTES, CodedPacket


def make_packet(session=1, generation=0, n=4, m=8, seed=0):
    rng = np.random.default_rng(seed)
    return CodedPacket(
        session_id=session,
        generation_id=generation,
        coefficients=rng.integers(0, 256, n, dtype=np.uint8),
        payload=rng.integers(0, 256, m, dtype=np.uint8),
    )


class TestConstruction:
    def test_fields(self):
        packet = make_packet(session=7, generation=3, n=5, m=16)
        assert packet.session_id == 7
        assert packet.generation_id == 3
        assert packet.blocks == 5
        assert packet.block_size == 16

    def test_coefficients_are_immutable_copies(self):
        coeffs = np.ones(4, dtype=np.uint8)
        packet = CodedPacket(1, 0, coeffs)
        coeffs[0] = 99
        assert packet.coefficients[0] == 1
        with pytest.raises(ValueError):
            packet.coefficients[0] = 2

    def test_coefficient_only_mode(self):
        packet = CodedPacket(1, 0, np.ones(4, dtype=np.uint8))
        assert packet.payload is None
        assert packet.block_size == 0

    def test_rejects_empty_coefficients(self):
        with pytest.raises(ValueError):
            CodedPacket(1, 0, np.zeros(0, dtype=np.uint8))

    def test_rejects_2d_coefficients(self):
        with pytest.raises(ValueError):
            CodedPacket(1, 0, np.zeros((2, 2), dtype=np.uint8))

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError):
            CodedPacket(-1, 0, np.ones(2, dtype=np.uint8))
        with pytest.raises(ValueError):
            CodedPacket(1, 2**32, np.ones(2, dtype=np.uint8))

    def test_is_zero(self):
        assert CodedPacket(1, 0, np.zeros(3, dtype=np.uint8)).is_zero()
        assert not make_packet().is_zero()

    def test_wire_size(self):
        packet = make_packet(n=4, m=8)
        assert packet.wire_size == HEADER_BYTES + 4 + 8


class TestSerialization:
    def test_round_trip(self):
        packet = make_packet(session=42, generation=9, n=6, m=32)
        parsed = CodedPacket.from_bytes(packet.to_bytes())
        assert parsed.session_id == 42
        assert parsed.generation_id == 9
        assert np.array_equal(parsed.coefficients, packet.coefficients)
        assert np.array_equal(parsed.payload, packet.payload)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=30)
    def test_round_trip_property(self, session, generation, n, m):
        rng = np.random.default_rng(n * 64 + m)
        packet = CodedPacket(
            session_id=session,
            generation_id=generation,
            coefficients=rng.integers(0, 256, n, dtype=np.uint8),
            payload=rng.integers(0, 256, m, dtype=np.uint8),
        )
        parsed = CodedPacket.from_bytes(packet.to_bytes())
        assert parsed.session_id == session
        assert parsed.generation_id == generation
        assert np.array_equal(parsed.coefficients, packet.coefficients)
        assert np.array_equal(parsed.payload, packet.payload)

    def test_coefficient_only_cannot_serialize(self):
        packet = CodedPacket(1, 0, np.ones(3, dtype=np.uint8))
        with pytest.raises(ValueError, match="coefficient-only"):
            packet.to_bytes()

    def test_truncated_rejected(self):
        data = make_packet().to_bytes()
        with pytest.raises(ValueError):
            CodedPacket.from_bytes(data[:-1])

    def test_bad_magic_rejected(self):
        data = bytearray(make_packet().to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            CodedPacket.from_bytes(bytes(data))

    def test_bad_version_rejected(self):
        data = bytearray(make_packet().to_bytes())
        data[2] = 99
        with pytest.raises(ValueError, match="version"):
            CodedPacket.from_bytes(bytes(data))

    def test_short_header_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            CodedPacket.from_bytes(b"\x00" * 3)
