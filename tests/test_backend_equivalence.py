"""Backend/reference equivalence properties for the GF(2^8) kernels.

Every registered backend is a performance rewrite of the numpy
reference — it must be *bit-for-bit* identical on every operation, the
way ``tests/test_batch_equivalence.py`` pins batch vs incremental.
These hypothesis properties drive random matrices and shapes through
``matmul`` / ``rref`` / ``invert`` / ``addmul_rows`` /
``eliminate_panel`` on every backend available on this machine and
compare against :class:`repro.coding.gf256.GF256`; a full-session
digest test then pins the end-to-end coded pipeline across backends.

CI runs this file once per backend with ``OMNC_GF_BACKEND`` set (the
``codec-backends`` job), so the parametrized-by-available-backend form
here also covers whichever backend the environment selected.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import matrix as gfmatrix
from repro.coding.backends import available_backends, get_backend
from repro.coding.decoder import ProgressiveDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.generation import GenerationParams, random_generation
from repro.coding.gf256 import GF256

BACKENDS = available_backends()


def _random_matrix(rng, rows, cols):
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


@pytest.mark.parametrize("backend", BACKENDS)
class TestKernelEquivalence:
    @given(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_matmul_matches_reference(self, backend, n, k, m, seed):
        field = get_backend(backend)
        rng = np.random.default_rng(seed)
        a = _random_matrix(rng, n, k)
        b = _random_matrix(rng, k, m)
        assert np.array_equal(field.matmul(a, b), GF256.matmul(a, b))

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=48),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_addmul_rows_matches_reference(self, backend, rows, width, seed):
        field = get_backend(backend)
        rng = np.random.default_rng(seed)
        targets = _random_matrix(rng, rows, width)
        source = rng.integers(0, 256, size=width, dtype=np.uint8)
        coefficients = rng.integers(0, 256, size=rows, dtype=np.uint8)
        expected = targets.copy()
        GF256.addmul_rows(expected, source, coefficients)
        got = targets.copy()
        field.addmul_rows(got, source, coefficients)
        assert np.array_equal(got, expected)

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=48),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_scale_rows_matches_reference(self, backend, rows, width, seed):
        field = get_backend(backend)
        rng = np.random.default_rng(seed)
        matrix = _random_matrix(rng, rows, width)
        coefficients = rng.integers(0, 256, size=rows, dtype=np.uint8)
        assert np.array_equal(
            field.scale_rows(matrix, coefficients),
            GF256.scale_rows(matrix, coefficients),
        )

    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=14),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_rref_matches_reference(self, backend, rows, cols, seed):
        field = get_backend(backend)
        matrix = _random_matrix(np.random.default_rng(seed), rows, cols)
        got, got_pivots = gfmatrix.rref(matrix, field)
        expected, expected_pivots = gfmatrix.rref(matrix, GF256)
        assert got_pivots == expected_pivots
        assert np.array_equal(got, expected)

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_invert_matches_reference(self, backend, n, seed):
        field = get_backend(backend)
        matrix = gfmatrix.random_matrix(
            n, n, np.random.default_rng(seed), full_rank=True, field=GF256
        )
        got = gfmatrix.invert(matrix, field)
        assert np.array_equal(got, gfmatrix.invert(matrix, GF256))
        # And it actually inverts, on the backend's own arithmetic.
        assert np.array_equal(field.matmul(got, matrix), gfmatrix.identity(n))

    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=24),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_eliminate_panel_matches_reference(
        self, backend, rows, panel, extra, limit, seed
    ):
        field = get_backend(backend)
        matrix = _random_matrix(np.random.default_rng(seed), rows, panel + extra)
        expected = matrix.copy()
        exp_rows, exp_cols = GF256.eliminate_panel(expected, panel, limit)
        got = matrix.copy()
        got_rows, got_cols = field.eliminate_panel(got, panel, limit)
        assert np.array_equal(got_rows, exp_rows)
        assert np.array_equal(got_cols, exp_cols)
        assert np.array_equal(got, expected)

    def test_elementwise_operations_match_reference(self, backend):
        field = get_backend(backend)
        values = np.arange(256, dtype=np.uint8)
        grid_a = np.repeat(values, 256)
        grid_b = np.tile(values, 256)
        assert np.array_equal(
            field.multiply(grid_a, grid_b), GF256.multiply(grid_a, grid_b)
        )
        assert np.array_equal(field.add(grid_a, grid_b), GF256.add(grid_a, grid_b))
        assert np.array_equal(field.inverse(values[1:]), GF256.inverse(values[1:]))


@pytest.mark.parametrize("backend", BACKENDS)
class TestSessionDigestAcrossBackends:
    """The full coded pipeline must be byte-identical on every backend."""

    def _run_session(self, field, seed=2008, blocks=12, block_size=64):
        rng = np.random.default_rng(seed)
        generation = random_generation(
            0, GenerationParams(blocks, block_size), np.random.default_rng(seed + 1)
        )
        encoder = SourceEncoder(1, generation, rng, field=field)
        decoder = ProgressiveDecoder(blocks, block_size, field=field)
        verdicts = []
        emitted = []
        while not decoder.is_complete:
            packets = encoder.next_packets(4)
            for packet in packets:
                emitted.append(
                    np.concatenate([packet.coefficients, packet.payload]).copy()
                )
            verdicts.extend(decoder.add_packets(packets).tolist())
        return generation, np.stack(emitted), verdicts, decoder

    def test_full_session_digest_is_pinned_across_backends(self, backend):
        field = get_backend(backend)
        generation, emitted, verdicts, decoder = self._run_session(field)
        ref_generation, ref_emitted, ref_verdicts, ref_decoder = self._run_session(
            GF256
        )
        # Same RNG stream + bit-identical arithmetic => identical wire
        # bytes, identical innovation verdicts, identical decode.
        assert np.array_equal(emitted, ref_emitted)
        assert verdicts == ref_verdicts
        assert np.array_equal(decoder.decode(), ref_decoder.decode())
        assert np.array_equal(decoder.decode(), generation.matrix)
        assert np.array_equal(generation.matrix, ref_generation.matrix)
        assert np.array_equal(
            decoder.coefficient_matrix(), ref_decoder.coefficient_matrix()
        )
