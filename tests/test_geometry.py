"""Deployment geometry."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.geometry import (
    DeploymentArea,
    Point,
    area_for_density,
    grid_positions,
    pairwise_distances,
    positions_array,
)

coord_st = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    @given(coord_st, coord_st, coord_st, coord_st)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(coord_st, coord_st)
    def test_distance_to_self_is_zero(self, x, y):
        p = Point(x, y)
        assert p.distance_to(p) == 0.0

    def test_as_array(self):
        assert np.array_equal(Point(1.5, -2.0).as_array(), [1.5, -2.0])


class TestPairwiseDistances:
    def test_matches_point_distances(self):
        points = [Point(0, 0), Point(1, 0), Point(0, 2)]
        matrix = pairwise_distances(positions_array(points))
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                assert matrix[i, j] == pytest.approx(a.distance_to(b))

    def test_diagonal_zero_and_symmetric(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 10, (20, 2))
        matrix = pairwise_distances(positions)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.allclose(matrix, matrix.T)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((3, 3)))

    def test_empty_positions(self):
        assert positions_array([]).shape == (0, 2)


class TestDeploymentArea:
    def test_contains(self):
        area = DeploymentArea(10, 5)
        assert area.contains(Point(0, 0))
        assert area.contains(Point(10, 5))
        assert not area.contains(Point(10.1, 1))

    def test_sample_points_inside(self):
        area = DeploymentArea(7, 3)
        points = area.sample_points(200, np.random.default_rng(1))
        assert points.shape == (200, 2)
        assert np.all(points[:, 0] >= 0) and np.all(points[:, 0] <= 7)
        assert np.all(points[:, 1] >= 0) and np.all(points[:, 1] <= 3)

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            DeploymentArea(-1, 5)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            DeploymentArea(1, 1).sample_points(-1, np.random.default_rng(0))

    def test_area(self):
        assert DeploymentArea(4, 2.5).area == pytest.approx(10.0)


class TestDensitySizing:
    def test_expected_neighbor_count_matches_request(self):
        # Empirically verify the sizing formula: deploy many nodes and
        # count in-range neighbors.
        node_count, target, radius = 400, 5.0, 10.0
        area = area_for_density(node_count, target, radius)
        rng = np.random.default_rng(7)
        positions = area.sample_points(node_count, rng)
        distances = pairwise_distances(positions)
        neighbor_counts = (distances <= radius).sum(axis=1) - 1
        # Border effects bias low; allow a generous band around target.
        assert target * 0.5 <= neighbor_counts.mean() <= target * 1.3

    def test_density_formula(self):
        area = area_for_density(300, 5.0, 100.0)
        expected_area = 300 * math.pi * 100.0**2 / 6.0
        assert area.area == pytest.approx(expected_area)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            area_for_density(0, 5, 10)
        with pytest.raises(ValueError):
            area_for_density(10, -1, 10)


class TestGrid:
    def test_grid_shape_and_spacing(self):
        grid = grid_positions(2, 3, 1.5)
        assert grid.shape == (6, 2)
        assert np.array_equal(grid[1] - grid[0], [1.5, 0.0])
        assert np.array_equal(grid[3] - grid[0], [0.0, 1.5])
