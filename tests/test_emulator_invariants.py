"""Cross-cutting emulator invariants (conservation-law style checks)."""

import pytest

from repro.emulator import SessionConfig, run_coded_session, run_unicast_session
from repro.protocols import plan_etx_route, plan_more, plan_omnc
from repro.topology import diamond_topology, random_network
from repro.util import RngFactory


@pytest.fixture(scope="module")
def mesh():
    rng = RngFactory(3)
    return rng, random_network(100, rng=rng.derive("topo"))


def _coded_result(mesh, planner, label, fidelity="flow"):
    rng, network = mesh
    plan = planner(network, 94, 45)
    config = SessionConfig(
        max_seconds=120.0, target_generations=3, coding_fidelity=fidelity
    )
    return (
        run_coded_session(
            network, plan, config=config,
            rng=rng.spawn(f"{label}-{fidelity}"), protocol_label=label,
        ),
        plan,
        network,
        config,
    )


class TestCodedInvariants:
    @pytest.mark.parametrize("fidelity", ["flow", "exact"])
    def test_destination_never_transmits(self, mesh, fidelity):
        result, plan, _, _ = _coded_result(mesh, plan_omnc, "omnc", fidelity)
        assert result.transmissions.get(plan.forwarders.destination, 0) == 0

    def test_delivered_links_are_real_links(self, mesh):
        result, _, network, _ = _coded_result(mesh, plan_omnc, "omnc")
        for i, j in result.delivered_links:
            assert network.has_link(i, j), (i, j)

    def test_ack_times_strictly_increasing(self, mesh):
        result, _, _, _ = _coded_result(mesh, plan_omnc, "omnc")
        assert list(result.ack_times) == sorted(result.ack_times)
        assert len(set(result.ack_times)) == len(result.ack_times)

    def test_duration_bounds_ack_times(self, mesh):
        result, _, _, _ = _coded_result(mesh, plan_omnc, "omnc")
        assert all(0 < t <= result.duration for t in result.ack_times)

    def test_packets_delivered_matches_generations(self, mesh):
        result, _, _, config = _coded_result(mesh, plan_omnc, "omnc")
        assert result.packets_delivered == (
            result.generations_decoded * config.blocks
        )

    def test_participants_cover_transmitters(self, mesh):
        result, _, _, _ = _coded_result(mesh, plan_more, "more")
        transmitters = {n for n, tx in result.transmissions.items() if tx > 0}
        assert transmitters <= set(result.participants)

    def test_queue_averages_nonnegative(self, mesh):
        result, _, _, _ = _coded_result(mesh, plan_more, "more")
        assert all(q >= 0 for q in result.average_queues.values())

    def test_more_and_omnc_use_same_selection(self, mesh):
        _, network = mesh
        omnc_plan = plan_omnc(network, 94, 45)
        more_plan = plan_more(network, 94, 45)
        assert omnc_plan.forwarders.nodes == more_plan.forwarders.nodes


class TestUnicastInvariants:
    def test_transmissions_at_least_deliveries_per_hop(self, mesh):
        rng, network = mesh
        plan = plan_etx_route(network, 94, 45)
        config = SessionConfig(max_seconds=120.0)
        result = run_unicast_session(
            network, plan, config=config, rng=rng.spawn("etx-inv")
        )
        # Lossy links: each hop transmits at least as often as it delivers.
        for index, node in enumerate(plan.path[:-1]):
            delivered_out = sum(
                1 for (i, j) in result.delivered_links if i == node
            )
            assert result.transmissions[node] >= delivered_out

    def test_delivered_count_bounded_by_source_output(self, mesh):
        rng, network = mesh
        plan = plan_etx_route(network, 94, 45)
        result = run_unicast_session(
            network, plan, config=SessionConfig(max_seconds=120.0),
            rng=rng.spawn("etx-inv2"),
        )
        assert result.packets_delivered <= result.transmissions[plan.source]


class TestFidelityAgreement:
    def test_flow_and_exact_agree_on_diamond(self):
        rng = RngFactory(21)
        network = diamond_topology(capacity=2e4)
        plan = plan_omnc(network, 0, 3)
        results = {}
        for fidelity in ("flow", "exact"):
            config = SessionConfig(
                blocks=16, block_size=256,
                max_seconds=200.0, target_generations=3,
                coding_fidelity=fidelity,
            )
            results[fidelity] = run_coded_session(
                network, plan, config=config, rng=rng.spawn(fidelity)
            )
        flow = results["flow"].throughput_bps
        exact = results["exact"].throughput_bps
        assert flow > 0 and exact > 0
        assert 0.5 <= exact / flow <= 2.0
