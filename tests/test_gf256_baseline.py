"""The baseline codec must agree exactly with the accelerated engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.gf256 import GF256
from repro.coding.gf256_baseline import GF256Baseline

bytes_st = st.integers(min_value=0, max_value=255)


class TestAgreement:
    @given(bytes_st, bytes_st)
    def test_multiply_agrees(self, a, b):
        assert int(GF256Baseline.multiply(a, b)) == int(GF256.multiply(a, b))

    @given(bytes_st, bytes_st)
    def test_add_agrees(self, a, b):
        assert int(GF256Baseline.add(a, b)) == int(GF256.add(a, b))

    @given(st.integers(min_value=1, max_value=255))
    def test_inverse_agrees(self, a):
        assert int(GF256Baseline.inverse(a)) == int(GF256.inverse(a))

    def test_matmul_agrees_on_random_matrices(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (6, 8), dtype=np.uint8)
        b = rng.integers(0, 256, (8, 10), dtype=np.uint8)
        assert np.array_equal(GF256Baseline.matmul(a, b), GF256.matmul(a, b))

    def test_matvec_agrees(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, (5, 7), dtype=np.uint8)
        v = rng.integers(0, 256, 7, dtype=np.uint8)
        assert np.array_equal(GF256Baseline.matvec(a, v), GF256.matvec(a, v))

    def test_scale_row_agrees(self):
        rng = np.random.default_rng(2)
        row = rng.integers(0, 256, 40, dtype=np.uint8)
        assert np.array_equal(
            GF256Baseline.scale_row(row, 0xA7), GF256.scale_row(row, 0xA7)
        )

    def test_addmul_row_agrees(self):
        rng = np.random.default_rng(3)
        target_a = rng.integers(0, 256, 24, dtype=np.uint8)
        target_b = target_a.copy()
        source = rng.integers(0, 256, 24, dtype=np.uint8)
        GF256.addmul_row(target_a, source, 0x2F)
        GF256Baseline.addmul_row(target_b, source, 0x2F)
        assert np.array_equal(target_a, target_b)

    @given(bytes_st, st.integers(min_value=0, max_value=10))
    @settings(max_examples=30)
    def test_power_agrees(self, a, exponent):
        assert GF256Baseline.power(a, exponent) == GF256.power(a, exponent)


class TestBaselineBehaviour:
    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256Baseline.inverse(0)

    def test_power_negative_rejected(self):
        with pytest.raises(ValueError):
            GF256Baseline.power(2, -3)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            GF256Baseline.matmul(
                np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8)
            )

    def test_name_distinguishes_engines(self):
        assert GF256Baseline.name == "baseline"
        assert GF256.name == "accelerated"

    def test_addmul_zero_coefficient_noop(self):
        target = np.array([4, 5], dtype=np.uint8)
        GF256Baseline.addmul_row(target, np.array([1, 1], dtype=np.uint8), 0)
        assert np.array_equal(target, [4, 5])
