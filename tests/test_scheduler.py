"""The ideal MAC: conflict graphs and weighted-lottery scheduling."""

import numpy as np
import pytest

from repro.emulator.scheduler import ConflictGraph, IdealMacScheduler
from repro.topology.random_network import (
    chain_topology,
    diamond_topology,
    network_from_links,
)


class TestConflictGraph:
    def test_one_hop_conflicts(self):
        net = chain_topology((0.5, 0.5, 0.5))
        graph = ConflictGraph(net, [0, 1, 2, 3])
        # chain geometry: nodes within 2 positions are in range.
        assert 1 in graph.conflicts_of(0)
        assert 2 in graph.conflicts_of(0)
        assert 3 not in graph.conflicts_of(0)

    def test_two_hop_conflicts_add_shared_receivers(self):
        net = diamond_topology()
        one_hop = ConflictGraph(net, [0, 1, 2, 3])
        two_hop = ConflictGraph(net, [0, 1, 2, 3], two_hop=True)
        # Relays 1 and 2 are out of range (no one-hop conflict) but share
        # receivers S and T (two-hop conflict).
        assert 2 not in one_hop.conflicts_of(1)
        assert 2 in two_hop.conflicts_of(1)

    def test_is_independent(self):
        net = diamond_topology()
        graph = ConflictGraph(net, [0, 1, 2, 3])
        assert graph.is_independent([1, 2])
        assert not graph.is_independent([0, 1])

    def test_unknown_participant_rejected(self):
        net = diamond_topology()
        with pytest.raises(ValueError):
            ConflictGraph(net, [0, 99])


class TestScheduler:
    def _uniform(self, nodes, value=1.0):
        return {n: value for n in nodes}

    def test_empty_when_no_backlog(self):
        net = diamond_topology()
        scheduler = IdealMacScheduler(ConflictGraph(net, [0, 1, 2, 3]))
        assert scheduler.schedule({}, {}) == ()

    def test_granted_set_is_independent(self):
        net = chain_topology((0.5, 0.5, 0.5))
        graph = ConflictGraph(net, [0, 1, 2, 3])
        scheduler = IdealMacScheduler(graph, rng=np.random.default_rng(0))
        for _ in range(100):
            granted = scheduler.schedule(
                self._uniform(range(4)), self._uniform(range(4), 0.5)
            )
            assert granted
            assert graph.is_independent(granted)

    def test_granted_set_is_maximal(self):
        net = diamond_topology()
        graph = ConflictGraph(net, [0, 1, 2, 3])
        scheduler = IdealMacScheduler(graph, rng=np.random.default_rng(1))
        for _ in range(50):
            granted = scheduler.schedule(
                self._uniform([1, 2]), self._uniform([1, 2], 0.3)
            )
            # Relays 1 and 2 do not conflict: both must be granted.
            assert set(granted) == {1, 2}

    def test_service_shares_proportional_to_weights(self):
        # Single collision domain, two contenders with weights 3:1.
        net = network_from_links({(0, 1): 0.9, (1, 0): 0.9, (0, 2): 0.9})
        graph = ConflictGraph(net, [0, 1])
        scheduler = IdealMacScheduler(graph, rng=np.random.default_rng(2))
        counts = {0: 0, 1: 0}
        rounds = 4000
        for _ in range(rounds):
            granted = scheduler.schedule(
                self._uniform([0, 1]), {0: 0.6, 1: 0.2}
            )
            assert len(granted) == 1  # they conflict
            counts[granted[0]] += 1
        share = counts[0] / rounds
        assert 0.68 <= share <= 0.82  # expect ~0.75

    def test_zero_weight_gets_floor_not_starved(self):
        net = network_from_links({(0, 1): 0.9, (1, 0): 0.9, (0, 2): 0.9})
        graph = ConflictGraph(net, [0, 1])
        scheduler = IdealMacScheduler(graph, rng=np.random.default_rng(3))
        counts = {0: 0, 1: 0}
        for _ in range(5000):
            granted = scheduler.schedule(self._uniform([0, 1]), {0: 1.0, 1: 0.0})
            counts[granted[0]] += 1
        assert counts[1] > 0  # the floor weight keeps it alive

    def test_only_backlogged_granted(self):
        net = diamond_topology()
        scheduler = IdealMacScheduler(
            ConflictGraph(net, [0, 1, 2, 3]), rng=np.random.default_rng(4)
        )
        granted = scheduler.schedule({1: 1.0}, {1: 0.5})
        assert granted == (1,)
