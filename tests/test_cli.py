"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            ["fig1"],
            ["fig2"],
            ["fig3"],
            ["fig4"],
            ["fig5"],
            ["fig5", "--smoke"],
            ["coding-speed"],
            ["convergence"],
            ["topology", "out.json"],
            ["session", "omnc", "0", "1"],
            ["session", "omnc", "0", "1", "--scenario", "drift"],
        ):
            args = parser.parse_args(command)
            assert callable(args.func)

    def test_fig2_options(self):
        args = build_parser().parse_args(["fig2", "--quality", "high", "--sessions", "3"])
        assert args.quality == "high"
        assert args.sessions == 3

    def test_session_protocol_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["session", "teleport", "0", "1"])

    def test_session_scenario_defaults(self):
        args = build_parser().parse_args(["session", "omnc", "0", "1"])
        assert args.scenario is None
        assert args.policy == "drift"
        assert args.epoch_seconds == 10.0

    def test_session_scenario_options(self):
        args = build_parser().parse_args(
            [
                "session", "more", "0", "1",
                "--scenario", "calm",
                "--policy", "periodic:3",
                "--epoch-seconds", "5",
            ]
        )
        assert args.scenario == "calm"
        assert args.policy == "periodic:3"
        assert args.epoch_seconds == 5.0


class TestExecutionFlags:
    def test_campaign_commands_expose_execution_flags(self):
        parser = build_parser()
        for command in ("fig2", "fig3", "fig4", "fig5", "convergence"):
            args = parser.parse_args([command, "--jobs", "4"])
            assert args.jobs == 4
            assert args.cache_dir is None
            assert args.resume is False
            assert args.fresh is False
            assert args.job_timeout is None
            assert args.job_retries == 1

    def test_policy_from_args_maps_flags(self):
        from repro.exec import DEFAULT_CACHE_DIR, policy_from_args

        args = build_parser().parse_args(
            [
                "fig2", "--jobs", "3",
                "--cache-dir", "/tmp/c",
                "--job-timeout", "5",
                "--job-retries", "2",
            ]
        )
        policy = policy_from_args(args)
        assert policy.jobs == 3
        assert policy.cache_dir == "/tmp/c"
        assert policy.resume is True
        assert policy.job_timeout == 5.0
        assert policy.retries == 2

        resumed = policy_from_args(build_parser().parse_args(["fig3", "--resume"]))
        assert resumed.cache_dir == DEFAULT_CACHE_DIR

        fresh = policy_from_args(
            build_parser().parse_args(["fig4", "--cache-dir", "/tmp/c", "--fresh"])
        )
        assert fresh.resume is False
        assert fresh.cache_dir == "/tmp/c"

    def test_fig2_parallel_run(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["fig2", "--sessions", "2", "--jobs", "2"])
        assert code == 0
        assert "mean throughput gain" in capsys.readouterr().out


class TestCommands:
    def test_topology_generation(self, tmp_path, capsys):
        path = tmp_path / "net.json"
        code = main(["topology", str(path), "--nodes", "30", "--seed", "5"])
        assert code == 0
        assert path.exists()
        assert "30-node network" in capsys.readouterr().out

    def test_session_on_saved_topology(self, tmp_path, capsys):
        path = tmp_path / "net.json"
        main(["topology", str(path), "--nodes", "50", "--seed", "5"])
        # Find a feasible pair on the saved topology first.
        from repro.topology.serialization import load_network
        from repro.routing.node_selection import NodeSelectionError, select_forwarders

        network = load_network(path)
        pair = None
        for s in range(network.node_count):
            for t in range(network.node_count - 1, -1, -1):
                if s == t:
                    continue
                try:
                    select_forwarders(network, s, t)
                    pair = (s, t)
                    break
                except NodeSelectionError:
                    continue
            if pair:
                break
        assert pair is not None
        code = main([
            "session", "omnc", str(pair[0]), str(pair[1]),
            "--topology", str(path),
            "--seconds", "40", "--generations", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_etx_session_random_topology(self, capsys):
        # ETX on a random topology; endpoints chosen to be connected on
        # the default seed (falls back cleanly if planning fails).
        from repro.topology.random_network import random_network
        from repro.topology.phy import lossy_phy
        from repro.util.rng import RngFactory
        from repro.protocols.etx_routing import plan_etx_route
        from repro.routing.node_selection import NodeSelectionError

        rng = RngFactory(2008)
        network = random_network(
            60, phy=lossy_phy(rng=rng.derive("phy")), rng=rng.derive("topology")
        )
        pair = None
        for s in range(network.node_count):
            for t in range(network.node_count):
                if s == t:
                    continue
                try:
                    plan_etx_route(network, s, t)
                    pair = (s, t)
                    break
                except NodeSelectionError:
                    continue
            if pair:
                break
        assert pair is not None
        code = main([
            "session", "etx", str(pair[0]), str(pair[1]),
            "--nodes", "60", "--seconds", "30", "--seed", "2008",
        ])
        assert code == 0
        assert "packets" in capsys.readouterr().out

    def test_scenario_session(self, capsys):
        # Live control plane through the CLI: ETX under the builtin
        # drift scenario with a drift-triggered policy.
        from repro.topology.random_network import random_network
        from repro.topology.phy import lossy_phy
        from repro.util.rng import RngFactory
        from repro.protocols.etx_routing import plan_etx_route
        from repro.routing.node_selection import NodeSelectionError

        rng = RngFactory(2008)
        network = random_network(
            60, phy=lossy_phy(rng=rng.derive("phy")), rng=rng.derive("topology")
        )
        pair = None
        for s in range(network.node_count):
            for t in range(network.node_count):
                if s == t:
                    continue
                try:
                    plan_etx_route(network, s, t)
                    pair = (s, t)
                    break
                except NodeSelectionError:
                    continue
            if pair:
                break
        assert pair is not None
        code = main([
            "session", "etx", str(pair[0]), str(pair[1]),
            "--nodes", "60", "--seconds", "30", "--seed", "2008",
            "--scenario", "drift", "--policy", "drift:0.001",
            "--epoch-seconds", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario:" in out
        assert "replans:" in out
