"""The deterministic parallel execution engine (repro.exec)."""

import os
import time

import pytest

from repro import obs
from repro.exec import (
    CACHE_SCHEMA,
    ExecutionPolicy,
    JobFailure,
    JobResult,
    JobSpec,
    PersistentWorkerGroup,
    ResultCache,
    WorkerCallError,
    WorkerPool,
    execute_jobs,
    run_serial,
    stable_hash,
)
from repro.exec.job import outcomes_ok


# -- module-level job functions (pickled by reference into workers) --------

def _square(payload):
    return payload * payload


def _raise_value_error(payload):
    raise ValueError(f"bad payload {payload}")


def _crash(_payload):
    os._exit(13)


def _sleep(seconds):
    time.sleep(seconds)
    return seconds


def _touch_and_square(payload):
    """Record execution via a marker file, then compute."""
    directory, value = payload
    with open(os.path.join(directory, f"ran-{value}"), "w") as fh:
        fh.write(str(value))
    return value * value


def _specs(values, fn=_square):
    return [
        JobSpec(key=stable_hash({"fn": fn.__name__, "v": v}), fn=fn, payload=v)
        for v in values
    ]


class _Counter:
    """Stateful worker payload for PersistentWorkerGroup tests."""

    def __init__(self, start):
        self.value = start

    def add(self, amount):
        self.value += amount
        return self.value

    def get(self, _argument=None):
        return self.value

    def boom(self, _argument=None):
        raise RuntimeError("counter exploded")

    def die(self, _argument=None):
        os._exit(13)


def _counter_factory(payload):
    return _Counter(payload)


def _failing_factory(_payload):
    raise ValueError("cannot build state")


class TestStableHash:
    def test_equal_payloads_hash_equal(self):
        assert stable_hash({"a": 1, "b": [2, 3]}) == stable_hash(
            {"b": [2, 3], "a": 1}
        )

    def test_different_payloads_hash_differently(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_dataclasses_hash_by_value(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Payload:
            x: int
            y: str

        assert stable_hash(Payload(1, "a")) == stable_hash(Payload(1, "a"))
        assert stable_hash(Payload(1, "a")) != stable_hash(Payload(2, "a"))

    def test_unhashable_payloads_rejected(self):
        with pytest.raises(TypeError):
            stable_hash({"a": object()})

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            JobSpec(key="", fn=_square, payload=1)
        with pytest.raises(TypeError):
            JobSpec(key="k", fn="not callable", payload=1)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = stable_hash({"k": 1})
        hit, _ = cache.get(key)
        assert not hit
        cache.put(key, {"answer": 42})
        hit, value = cache.get(key)
        assert hit
        assert value == {"answer": 42}
        assert key in cache
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = stable_hash({"k": 2})
        cache.put(key, 7)
        cache.path_for(key).write_bytes(b"garbage")
        hit, _ = cache.get(key)
        assert not hit
        assert key not in cache  # corrupt file was dropped

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for i in range(3):
            cache.put(stable_hash({"k": i}), i)
        assert len(cache) == 3
        cache.clear()
        assert len(cache) == 0

    def test_schema_constant_exported(self):
        assert CACHE_SCHEMA >= 1


class TestRunSerial:
    def test_values_in_order(self):
        outcomes = run_serial(_specs([1, 2, 3]))
        assert outcomes_ok(outcomes)
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert all(o.attempts == 1 for o in outcomes)

    def test_exception_recorded_not_raised(self):
        outcomes = run_serial(_specs([5], fn=_raise_value_error))
        (outcome,) = outcomes
        assert isinstance(outcome, JobFailure)
        assert outcome.kind == "exception"
        assert outcome.error == "ValueError"
        assert "bad payload 5" in outcome.message
        assert outcome.attempts == 1


class TestWorkerPool:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(1, job_timeout=0)
        with pytest.raises(ValueError):
            WorkerPool(1, retries=-1)

    def test_results_in_submission_order(self):
        pool = WorkerPool(3)
        outcomes = pool.run(_specs(list(range(10))))
        assert outcomes_ok(outcomes)
        assert [o.value for o in outcomes] == [v * v for v in range(10)]

    def test_exception_is_not_retried(self):
        pool = WorkerPool(2, retries=3)
        outcomes = pool.run(_specs([1], fn=_raise_value_error))
        (outcome,) = outcomes
        assert isinstance(outcome, JobFailure)
        assert outcome.kind == "exception"
        assert outcome.attempts == 1  # deterministic: no retry budget spent
        assert "ValueError" in outcome.traceback

    def test_crash_is_isolated_and_retried(self):
        specs = _specs([1, 2], fn=_square) + _specs([0], fn=_crash)
        pool = WorkerPool(2, retries=1)
        outcomes = pool.run(specs)
        assert [o.value for o in outcomes[:2]] == [1, 4]
        crash = outcomes[2]
        assert isinstance(crash, JobFailure)
        assert crash.kind == "crash"
        assert crash.attempts == 2  # initial + one retry
        assert "died" in crash.message

    def test_timeout_kills_retries_then_fails(self):
        specs = _specs([0.0], fn=_sleep) + [
            JobSpec(key="sleeper", fn=_sleep, payload=30.0)
        ]
        pool = WorkerPool(2, job_timeout=0.5, retries=1)
        started = time.monotonic()
        outcomes = pool.run(specs)
        elapsed = time.monotonic() - started
        assert isinstance(outcomes[0], JobResult)
        timeout = outcomes[1]
        assert isinstance(timeout, JobFailure)
        assert timeout.kind == "timeout"
        assert timeout.attempts == 2
        assert elapsed < 20  # the 30 s job was killed, twice

    def test_on_outcome_fires_per_job(self):
        seen = []
        pool = WorkerPool(2)
        pool.run(
            _specs([1, 2, 3]),
            on_outcome=lambda spec, outcome: seen.append(spec.key),
        )
        assert sorted(seen) == sorted(s.key for s in _specs([1, 2, 3]))


class TestExecutionPolicy:
    def test_defaults_are_serial_uncached(self):
        policy = ExecutionPolicy()
        assert policy.jobs == 1
        assert not policy.parallel
        assert policy.cache_dir is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(jobs=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(job_timeout=-1)
        with pytest.raises(ValueError):
            ExecutionPolicy(retries=-1)


class TestExecuteJobs:
    def test_serial_and_parallel_agree(self):
        specs = _specs(list(range(6)))
        serial = execute_jobs(specs, ExecutionPolicy(jobs=1))
        parallel = execute_jobs(specs, ExecutionPolicy(jobs=3))
        assert [o.value for o in serial] == [o.value for o in parallel]

    def test_cache_roundtrip_skips_execution(self, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        specs = [
            JobSpec(
                key=stable_hash({"touch": v}),
                fn=_touch_and_square,
                payload=(str(marker_dir), v),
            )
            for v in range(4)
        ]
        policy = ExecutionPolicy(jobs=1, cache_dir=str(tmp_path / "cache"))
        first = execute_jobs(specs, policy)
        assert [o.value for o in first] == [0, 1, 4, 9]
        assert all(not o.cached for o in first)
        assert len(list(marker_dir.iterdir())) == 4

        for marker in marker_dir.iterdir():
            marker.unlink()
        second = execute_jobs(specs, policy)
        assert [o.value for o in second] == [0, 1, 4, 9]
        assert all(o.cached for o in second)
        assert all(o.attempts == 0 for o in second)
        assert list(marker_dir.iterdir()) == []  # nothing re-executed

    def test_fresh_policy_ignores_cache_reads(self, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        specs = [
            JobSpec(
                key=stable_hash({"touch2": v}),
                fn=_touch_and_square,
                payload=(str(marker_dir), v),
            )
            for v in range(2)
        ]
        cached = ExecutionPolicy(jobs=1, cache_dir=str(tmp_path / "cache"))
        execute_jobs(specs, cached)
        for marker in marker_dir.iterdir():
            marker.unlink()
        fresh = ExecutionPolicy(
            jobs=1, cache_dir=str(tmp_path / "cache"), resume=False
        )
        outcomes = execute_jobs(specs, fresh)
        assert all(not o.cached for o in outcomes)
        assert len(list(marker_dir.iterdir())) == 2  # really re-ran

    def test_partial_cache_resumes(self, tmp_path):
        """An interrupted run's cache is honoured by the next run."""
        specs = _specs(list(range(5)))
        policy = ExecutionPolicy(jobs=1, cache_dir=str(tmp_path / "cache"))
        # Simulate an interruption: only the first two results landed.
        cache = ResultCache(policy.cache_dir)
        for spec in specs[:2]:
            cache.put(spec.key, spec.payload * spec.payload)
        outcomes = execute_jobs(specs, policy)
        assert [o.value for o in outcomes] == [v * v for v in range(5)]
        assert [o.cached for o in outcomes] == [True, True, False, False, False]

    def test_metrics_counters(self, tmp_path):
        registry = obs.MetricsRegistry(enabled=True)
        specs = _specs([1, 2, 3]) + _specs([9], fn=_raise_value_error)
        policy = ExecutionPolicy(jobs=1, cache_dir=str(tmp_path / "cache"))
        execute_jobs(specs, policy, registry=registry)
        snapshot = registry.snapshot()
        assert snapshot["exec.jobs_completed"]["value"] == 3
        assert snapshot["exec.jobs_failed"]["value"] == 1
        assert snapshot["exec.cache_misses"]["value"] == 4
        registry2 = obs.MetricsRegistry(enabled=True)
        execute_jobs(specs[:3], policy, registry=registry2)
        assert registry2.snapshot()["exec.cache_hits"]["value"] == 3


class TestPersistentWorkerGroup:
    """Long-lived stateful workers: the sharded emulator's substrate."""

    def test_state_persists_across_barriers(self):
        with WorkerPool(2).persistent(_counter_factory, [10, 100]) as group:
            assert group.size == 2
            assert group.call_all("add", [1, 2]) == [11, 102]
            assert group.call_all("add", [1, 2]) == [12, 104]
            assert group.call_all("get") == [12, 104]
            assert group.call_one(1, "add", 6) == 110

    def test_factory_error_fails_construction(self):
        with pytest.raises(WorkerCallError, match="cannot build state"):
            WorkerPool(1).persistent(_failing_factory, [0])

    def test_method_exception_carries_traceback(self):
        with WorkerPool(1).persistent(_counter_factory, [0]) as group:
            with pytest.raises(WorkerCallError, match="counter exploded"):
                group.call_all("boom")
            # The worker survives an in-method exception.
            assert group.call_all("get") == [0]

    def test_worker_death_is_detected(self):
        group = WorkerPool(1).persistent(_counter_factory, [0])
        try:
            with pytest.raises(WorkerCallError, match="died"):
                group.call_all("die")
        finally:
            group.close()

    def test_argument_count_must_match_workers(self):
        with WorkerPool(2).persistent(_counter_factory, [0, 0]) as group:
            with pytest.raises(ValueError, match="argument"):
                group.call_all("add", [1])

    def test_close_is_idempotent(self):
        group = WorkerPool(1).persistent(_counter_factory, [5])
        assert group.call_all("get") == [5]
        group.close()
        group.close()
