"""Protocol control planes: OMNC, MORE, oldMORE, ETX routing."""

import pytest

from repro.protocols.base import (
    CodedBroadcastPlan,
    CreditBroadcastPlan,
    UnicastPathPlan,
)
from repro.protocols.etx_routing import plan_etx_route, predicted_etx_throughput
from repro.protocols.more import (
    compute_expected_transmissions,
    effective_forwarders,
    plan_more,
    total_expected_transmissions,
)
from repro.protocols.oldmore import plan_oldmore
from repro.protocols.omnc import plan_omnc, plan_omnc_detailed
from repro.routing.node_selection import NodeSelectionError, select_forwarders
from repro.topology.random_network import (
    chain_topology,
    diamond_topology,
    fig1_sample_topology,
    random_network,
)
from repro.util.rng import RngFactory


class TestEtxRouting:
    def test_best_path_on_diamond(self):
        net = diamond_topology(p_su=0.9, p_ut=0.9, p_sv=0.3, p_vt=0.3)
        plan = plan_etx_route(net, 0, 3)
        assert plan.path == (0, 1, 3)
        assert plan.path_etx == pytest.approx(2 / 0.9)

    def test_unreachable_raises_selection_error(self):
        net = chain_topology((0.5,))
        with pytest.raises(NodeSelectionError):
            plan_etx_route(net, 1, 0)

    def test_same_endpoints_rejected(self):
        net = diamond_topology()
        with pytest.raises(NodeSelectionError):
            plan_etx_route(net, 0, 0)

    def test_predicted_throughput_positive_and_bounded(self):
        net = chain_topology((0.8, 0.8, 0.8))
        plan = plan_etx_route(net, 0, 3)
        predicted = predicted_etx_throughput(net, plan)
        assert 0 < predicted <= net.capacity

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            UnicastPathPlan(path=(0,), path_etx=1.0)
        with pytest.raises(ValueError):
            UnicastPathPlan(path=(0, 1, 0), path_etx=3.0)
        with pytest.raises(ValueError):
            UnicastPathPlan(path=(0, 1), path_etx=0.5)


class TestMoreHeuristic:
    def test_source_z_on_chain_matches_formula(self):
        net = chain_topology((0.5, 1.0))
        forwarders = select_forwarders(net, 0, 2)
        z = compute_expected_transmissions(net, forwarders)
        # Source must transmit 1/p = 2 per delivered packet: only node 1
        # (p=0.5) is closer than the source... the direct 2-hop
        # overhearing link (0, 2) does not exist here.
        assert z[0] == pytest.approx(2.0)
        assert z[1] == pytest.approx(1.0)

    def test_destination_never_forwards(self):
        net = fig1_sample_topology()
        forwarders = select_forwarders(net, 0, 5)
        z = compute_expected_transmissions(net, forwarders)
        assert z[forwarders.destination] == 0.0

    def test_credits_positive_for_useful_forwarders(self):
        net = fig1_sample_topology()
        plan = plan_more(net, 0, 5)
        assert plan.tx_credits  # at least one forwarder earns credit
        assert all(c > 0 for c in plan.tx_credits.values())
        assert plan.forwarders.source not in plan.tx_credits

    def test_total_transmissions_reasonable(self):
        # On a 2-hop chain with p=0.5 each, total expected transmissions
        # per packet must be near 2 + 2 = 4 (less with overhearing).
        net = chain_topology((0.5, 0.5))
        forwarders = select_forwarders(net, 0, 2)
        z = compute_expected_transmissions(net, forwarders)
        assert 2.0 <= total_expected_transmissions(z) <= 4.5

    def test_overhearing_reduces_source_cost(self):
        plain = chain_topology((0.5, 0.5))
        shortcut = chain_topology((0.5, 0.5), overhearing={(0, 2): 0.4})
        z_plain = compute_expected_transmissions(
            plain, select_forwarders(plain, 0, 2)
        )
        z_shortcut = compute_expected_transmissions(
            shortcut, select_forwarders(shortcut, 0, 2)
        )
        assert z_shortcut[0] < z_plain[0]

    def test_effective_forwarders_sorted(self):
        net = fig1_sample_topology()
        plan = plan_more(net, 0, 5)
        forwarders = effective_forwarders(plan)
        assert list(forwarders) == sorted(forwarders)

    def test_plan_validation_rejects_unselected(self):
        net = diamond_topology()
        forwarders = select_forwarders(net, 0, 3)
        with pytest.raises(ValueError):
            CreditBroadcastPlan(
                forwarders=forwarders,
                tx_credits={99: 1.0},
                expected_transmissions={},
            )


class TestOldMore:
    def test_prunes_more_than_new_more(self):
        net = random_network(100, rng=RngFactory(4).derive("t"))
        source, destination = 3, 77
        more_plan = plan_more(net, source, destination)
        old_plan = plan_oldmore(net, source, destination)
        assert len(effective_forwarders(old_plan)) <= len(
            effective_forwarders(more_plan)
        )

    def test_single_good_path_gets_all_credits(self):
        net = diamond_topology(p_su=0.9, p_ut=0.9, p_sv=0.3, p_vt=0.3)
        plan = plan_oldmore(net, 0, 3)
        # Relay 2 (the bad path) earns no credit from the min-cost plan.
        assert plan.tx_credits.get(2, 0.0) == pytest.approx(0.0, abs=1e-9)


class TestOmncPlanning:
    def test_plan_structure(self):
        net = fig1_sample_topology()
        report = plan_omnc_detailed(net, 0, 5)
        plan = report.plan
        assert plan.kind == "rate"
        assert plan.rates[5] == 0.0  # destination silent
        assert plan.predicted_throughput > 0
        assert report.converged

    def test_rates_cover_recovered_flows(self):
        net = fig1_sample_topology()
        report = plan_omnc_detailed(net, 0, 5)
        graph = report.graph
        # After repair + rescale the plan must satisfy the loss coupling
        # for its own predicted flows direction: every transmitter with
        # positive planned rate is bounded by capacity.
        for node, rate in report.plan.rates.items():
            assert 0 <= rate <= graph.capacity + 1e-6

    def test_centralized_planner(self):
        net = fig1_sample_topology()
        report = plan_omnc_detailed(net, 0, 5, planner="centralized")
        assert report.converged
        assert report.plan.iterations == 0
        assert report.plan.predicted_throughput > 0

    def test_unknown_planner_rejected(self):
        net = fig1_sample_topology()
        with pytest.raises(ValueError):
            plan_omnc(net, 0, 5, planner="magic")

    def test_mac_feasibility_of_shipped_rates(self):
        net = fig1_sample_topology()
        report = plan_omnc_detailed(net, 0, 5)
        graph = report.graph
        normalized = {
            n: r / graph.capacity for n, r in report.plan.rates.items()
        }
        for node in graph.mac_constrained_nodes():
            load = normalized.get(node, 0.0) + sum(
                normalized.get(j, 0.0) for j in graph.neighbors[node]
            )
            assert load <= 1.0 + 1e-6

    def test_plan_validation(self):
        net = diamond_topology()
        forwarders = select_forwarders(net, 0, 3)
        with pytest.raises(ValueError):
            CodedBroadcastPlan(
                forwarders=forwarders,
                rates={0: -1.0},
                predicted_throughput=1.0,
            )
        with pytest.raises(ValueError):
            CodedBroadcastPlan(
                forwarders=forwarders,
                rates={99: 1.0},
                predicted_throughput=1.0,
            )

    def test_active_nodes_includes_destination(self):
        net = diamond_topology()
        plan = plan_omnc(net, 0, 3)
        assert plan.forwarders.destination in plan.active_nodes()
