"""Progressive Gauss-Jordan decoding and the block-decode baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import matrix as gfm
from repro.coding.decoder import BlockDecoder, ProgressiveDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.generation import GenerationParams, random_generation
from repro.coding.packet import CodedPacket


def pipeline(blocks=6, block_size=16, seed=0):
    rng = np.random.default_rng(seed)
    generation = random_generation(0, GenerationParams(blocks, block_size), rng)
    encoder = SourceEncoder(1, generation, rng)
    return generation, encoder


class TestProgressiveDecoder:
    def test_decodes_back_to_original(self):
        generation, encoder = pipeline()
        decoder = ProgressiveDecoder(6, 16)
        while not decoder.is_complete:
            decoder.add_packet(encoder.next_packet())
        assert np.array_equal(decoder.decode(), generation.matrix)

    def test_decode_generation_wrapper(self):
        generation, encoder = pipeline(seed=4)
        decoder = ProgressiveDecoder(6, 16)
        while not decoder.is_complete:
            decoder.add_packet(encoder.next_packet())
        assert decoder.decode_generation(0) == generation

    def test_rank_counts_innovative_only(self):
        _, encoder = pipeline(seed=1)
        decoder = ProgressiveDecoder(6, 16)
        first = encoder.next_packet()
        assert decoder.add_packet(first)
        duplicate = CodedPacket(
            1, 0, first.coefficients.copy(), first.payload.copy()
        )
        assert not decoder.add_packet(duplicate)
        assert decoder.rank == 1
        assert decoder.received == 2
        assert decoder.redundant == 1

    def test_matrix_stays_in_rref_throughout(self):
        _, encoder = pipeline(seed=2)
        decoder = ProgressiveDecoder(6, 16)
        for _ in range(12):
            decoder.add_packet(encoder.next_packet())
            coeffs = decoder.coefficient_matrix()
            if coeffs.shape[0]:
                assert gfm.is_rref(coeffs)

    def test_decode_before_complete_raises(self):
        decoder = ProgressiveDecoder(4, 8)
        with pytest.raises(RuntimeError, match="not decodable"):
            decoder.decode()

    def test_coefficient_only_mode_tracks_rank(self):
        decoder = ProgressiveDecoder(3)
        assert decoder.add_row(np.array([1, 0, 0], dtype=np.uint8))
        assert decoder.add_row(np.array([0, 2, 0], dtype=np.uint8))
        assert not decoder.add_row(np.array([1, 2, 0], dtype=np.uint8))
        assert decoder.rank == 2

    def test_coefficient_only_decode_raises(self):
        decoder = ProgressiveDecoder(2)
        decoder.add_row(np.array([1, 0], dtype=np.uint8))
        decoder.add_row(np.array([0, 1], dtype=np.uint8))
        with pytest.raises(RuntimeError, match="no payloads"):
            decoder.decode()

    def test_extra_packets_after_complete_are_ignored(self):
        generation, encoder = pipeline(seed=3)
        decoder = ProgressiveDecoder(6, 16)
        while not decoder.is_complete:
            decoder.add_packet(encoder.next_packet())
        assert not decoder.add_packet(encoder.next_packet())
        assert np.array_equal(decoder.decode(), generation.matrix)

    def test_size_mismatch_rejected(self):
        decoder = ProgressiveDecoder(4, 8)
        rng = np.random.default_rng(0)
        wrong_n = CodedPacket(1, 0, rng.integers(1, 256, 3, dtype=np.uint8),
                              rng.integers(0, 256, 8, dtype=np.uint8))
        with pytest.raises(ValueError):
            decoder.add_packet(wrong_n)
        wrong_m = CodedPacket(1, 0, rng.integers(1, 256, 4, dtype=np.uint8),
                              rng.integers(0, 256, 7, dtype=np.uint8))
        with pytest.raises(ValueError):
            decoder.add_packet(wrong_m)

    def test_payload_expected_but_missing(self):
        decoder = ProgressiveDecoder(4, 8)
        packet = CodedPacket(1, 0, np.ones(4, dtype=np.uint8))
        with pytest.raises(ValueError, match="payloads"):
            decoder.add_packet(packet)

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_exactly_n_innovative_needed(self, blocks):
        _, encoder = pipeline(blocks=blocks, block_size=4, seed=blocks)
        decoder = ProgressiveDecoder(blocks, 4)
        innovative = 0
        while not decoder.is_complete:
            if decoder.add_packet(encoder.next_packet()):
                innovative += 1
        assert innovative == blocks


class TestLossyPathDecoding:
    def test_decoding_through_random_erasures(self):
        # Simulate a lossy link: drop ~40% of packets; the decoder must
        # still finish — reliability without retransmission (Sec. 3.1).
        generation, encoder = pipeline(blocks=8, block_size=8, seed=5)
        rng = np.random.default_rng(99)
        decoder = ProgressiveDecoder(8, 8)
        attempts = 0
        while not decoder.is_complete:
            attempts += 1
            packet = encoder.next_packet()
            if rng.random() < 0.4:
                continue  # erased in flight
            decoder.add_packet(packet)
        assert np.array_equal(decoder.decode(), generation.matrix)
        assert attempts >= 8


class TestBlockDecoder:
    def test_block_decode_matches_progressive(self):
        generation, encoder = pipeline(seed=6)
        block = BlockDecoder(6, 16)
        assert block.try_decode() is None
        for _ in range(6):
            block.add_packet(encoder.next_packet())
        recovered = block.try_decode()
        assert recovered is not None
        assert np.array_equal(recovered, generation.matrix)

    def test_block_decoder_with_redundant_packets(self):
        generation, encoder = pipeline(seed=7)
        block = BlockDecoder(6, 16)
        first = encoder.next_packet()
        block.add_packet(first)
        block.add_packet(first)  # duplicate
        for _ in range(6):
            block.add_packet(encoder.next_packet())
        recovered = block.try_decode()
        assert np.array_equal(recovered, generation.matrix)

    def test_block_decoder_rejects_mismatched(self):
        block = BlockDecoder(4, 8)
        rng = np.random.default_rng(0)
        packet = CodedPacket(1, 0, rng.integers(1, 256, 3, dtype=np.uint8),
                             rng.integers(0, 256, 8, dtype=np.uint8))
        with pytest.raises(ValueError):
            block.add_packet(packet)

    def test_invalid_constructor(self):
        with pytest.raises(ValueError):
            BlockDecoder(0, 8)
        with pytest.raises(ValueError):
            ProgressiveDecoder(4, 0)
        with pytest.raises(ValueError):
            ProgressiveDecoder(0)
