"""Topology JSON persistence."""

import json

import pytest

from repro.topology.serialization import (
    FORMAT_NAME,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.topology.random_network import diamond_topology, random_network
from repro.util.rng import RngFactory


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        original = random_network(40, rng=RngFactory(3).derive("t"))
        rebuilt = network_from_dict(network_to_dict(original))
        assert rebuilt.node_count == original.node_count
        assert rebuilt.communication_range == original.communication_range
        assert rebuilt.capacity == original.capacity
        assert sorted(rebuilt.links()) == sorted(original.links())
        for i in original.nodes():
            assert rebuilt.neighbors(i) == original.neighbors(i)

    def test_file_round_trip(self, tmp_path):
        original = diamond_topology()
        path = tmp_path / "net.json"
        save_network(original, path)
        rebuilt = load_network(path)
        assert sorted(rebuilt.links()) == sorted(original.links())

    def test_document_is_valid_json(self, tmp_path):
        path = tmp_path / "net.json"
        save_network(diamond_topology(), path)
        document = json.loads(path.read_text())
        assert document["format"] == FORMAT_NAME


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a"):
            network_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        document = network_to_dict(diamond_topology())
        document["version"] = 99
        with pytest.raises(ValueError, match="version"):
            network_from_dict(document)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            network_from_dict([1, 2, 3])

    def test_missing_field_rejected(self):
        document = network_to_dict(diamond_topology())
        del document["links"]
        with pytest.raises(ValueError, match="malformed"):
            network_from_dict(document)
