"""Registry semantics of :mod:`repro.coding.backends`.

Covers name lookup, lazy providers (including failing ones), the
``OMNC_GF_BACKEND`` environment override, ``select_backend`` round-trips
with worker export, and default-field resolution in the codec classes.
"""

import numpy as np
import pytest

from repro.coding import backends
from repro.coding.backends import (
    BACKEND_ENV,
    GF256NibbleSplit,
    REFERENCE_BACKEND,
    active_backend,
    active_backend_name,
    available_backends,
    best_backend_name,
    get_backend,
    register_backend,
    registered_backends,
    resolve_field,
    select_backend,
)
from repro.coding.decoder import ProgressiveDecoder
from repro.coding.gf256 import GF256


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Isolate each test from process-level backend selection."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    backends.clear_selection()
    yield
    backends.clear_selection()


class TestLookup:
    def test_reference_backend_is_always_registered(self):
        assert REFERENCE_BACKEND in registered_backends()
        assert REFERENCE_BACKEND in available_backends()
        assert get_backend(REFERENCE_BACKEND) is GF256

    def test_nibble_backend_is_always_available(self):
        assert "nibble" in available_backends()
        assert get_backend("nibble") is GF256NibbleSplit

    def test_unknown_name_raises_keyerror_listing_available(self):
        with pytest.raises(KeyError, match="available here"):
            get_backend("definitely-not-a-backend")

    def test_best_resolves_to_an_available_backend(self):
        name = best_backend_name()
        assert name in available_backends()
        assert get_backend("best") is get_backend(name)

    def test_every_available_backend_resolves(self):
        for name in available_backends():
            backend = get_backend(name)
            assert hasattr(backend, "matmul")
            assert hasattr(backend, "eliminate_panel")


class TestLazyProviders:
    def test_failing_provider_degrades_to_unavailable(self):
        def explode():
            raise RuntimeError("toolchain on fire")

        register_backend("_test_broken", explode, lazy=True)
        try:
            assert "_test_broken" in registered_backends()
            assert "_test_broken" not in available_backends()
            with pytest.raises(KeyError):
                get_backend("_test_broken")
        finally:
            backends._REGISTRY.pop("_test_broken", None)
            backends._PROVIDERS.pop("_test_broken", None)
            backends._RESOLVED.pop("_test_broken", None)

    def test_provider_returning_none_is_skipped_cleanly(self):
        register_backend("_test_absent", lambda: None, lazy=True)
        try:
            assert "_test_absent" not in available_backends()
        finally:
            backends._PROVIDERS.pop("_test_absent", None)
            backends._RESOLVED.pop("_test_absent", None)

    def test_provider_runs_once_and_caches(self):
        calls = []

        def provider():
            calls.append(1)
            return GF256

        register_backend("_test_cached", provider, lazy=True)
        try:
            assert get_backend("_test_cached") is GF256
            assert get_backend("_test_cached") is GF256
            assert len(calls) == 1
        finally:
            backends._PROVIDERS.pop("_test_cached", None)
            backends._RESOLVED.pop("_test_cached", None)

    def test_eager_registration_replaces_lazy(self):
        register_backend("_test_swap", lambda: None, lazy=True)
        register_backend("_test_swap", GF256)
        try:
            assert get_backend("_test_swap") is GF256
        finally:
            backends._REGISTRY.pop("_test_swap", None)

    def test_empty_name_is_rejected(self):
        with pytest.raises(ValueError):
            register_backend("", GF256)


class TestSelection:
    def test_default_active_backend_is_the_reference(self):
        assert active_backend() is GF256
        assert active_backend_name() == REFERENCE_BACKEND

    def test_env_override_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "nibble")
        assert active_backend() is GF256NibbleSplit
        assert active_backend_name() == "nibble"

    def test_stale_env_name_falls_back_to_reference(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "no-such-backend")
        assert active_backend() is GF256
        assert active_backend_name() == REFERENCE_BACKEND

    def test_select_backend_round_trip(self):
        backend = select_backend("nibble")
        assert backend is GF256NibbleSplit
        assert active_backend() is GF256NibbleSplit
        assert active_backend_name() == "nibble"
        backends.clear_selection()
        assert active_backend() is GF256

    def test_select_backend_export_sets_env_for_workers(self, monkeypatch):
        import os

        select_backend("nibble", export=True)
        try:
            assert os.environ[BACKEND_ENV] == "nibble"
        finally:
            monkeypatch.delenv(BACKEND_ENV, raising=False)

    def test_select_backend_validates_the_name(self):
        with pytest.raises(KeyError):
            select_backend("bogus")
        assert active_backend() is GF256

    def test_select_best_reports_concrete_name(self):
        select_backend("best")
        assert active_backend_name() == best_backend_name()


class TestDefaultFieldResolution:
    def test_resolve_field_prefers_explicit(self):
        assert resolve_field(GF256NibbleSplit) is GF256NibbleSplit
        assert resolve_field(None) is GF256

    def test_decoder_picks_up_selected_backend(self):
        select_backend("nibble")
        decoder = ProgressiveDecoder(4, 8)
        assert decoder._field is GF256NibbleSplit

    def test_decoder_explicit_field_wins_over_selection(self):
        select_backend("nibble")
        decoder = ProgressiveDecoder(4, 8, field=GF256)
        assert decoder._field is GF256

    def test_decode_result_is_backend_independent(self):
        rng = np.random.default_rng(5)
        from repro.coding.generation import GenerationParams, random_generation

        generation = random_generation(0, GenerationParams(6, 16), rng)
        results = []
        for name in available_backends():
            field = get_backend(name)
            decoder = ProgressiveDecoder(6, 16, field=field)
            vectors = np.random.default_rng(9).integers(
                0, 256, size=(10, 6), dtype=np.uint8
            )
            payloads = GF256.matmul(vectors, generation.matrix)
            decoder.add_rows(np.concatenate([vectors, payloads], axis=1))
            assert decoder.is_complete
            results.append(decoder.decode())
        for result in results[1:]:
            assert np.array_equal(result, results[0])
