"""WirelessNetwork: links, neighborhoods, interference, views."""

import numpy as np
import pytest

from repro.topology.graph import WirelessNetwork
from repro.topology.random_network import (
    chain_topology,
    diamond_topology,
    fig1_sample_topology,
    network_from_links,
    random_network,
)
from repro.util.rng import RngFactory


def simple_network():
    positions = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [0.0, 1.0]])
    links = {(0, 1): 0.8, (1, 0): 0.7, (1, 2): 0.5, (0, 3): 0.9}
    return WirelessNetwork(positions, links, 1.2, capacity=1e4)


class TestConstruction:
    def test_basic_accessors(self):
        net = simple_network()
        assert net.node_count == 4
        assert net.link_count() == 4
        assert net.capacity == 1e4
        assert net.communication_range == 1.2

    def test_probability_lookup(self):
        net = simple_network()
        assert net.probability(0, 1) == 0.8
        assert net.probability(1, 0) == 0.7
        assert net.probability(2, 0) == 0.0  # no such link
        assert net.has_link(1, 2)
        assert not net.has_link(2, 1)

    def test_link_beyond_range_rejected(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0]])
        with pytest.raises(ValueError, match="beyond"):
            WirelessNetwork(positions, {(0, 1): 0.5}, 1.0)

    def test_self_link_rejected(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="self-link"):
            WirelessNetwork(positions, {(0, 0): 0.5}, 2.0)

    def test_bad_probability_rejected(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            WirelessNetwork(positions, {(0, 1): 0.0}, 2.0)
        with pytest.raises(ValueError):
            WirelessNetwork(positions, {(0, 1): 1.5}, 2.0)

    def test_out_of_range_node_rejected(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            WirelessNetwork(positions, {(0, 5): 0.5}, 2.0)

    def test_positions_read_only(self):
        net = simple_network()
        with pytest.raises(ValueError):
            net.positions[0, 0] = 9.0


class TestNeighborhoods:
    def test_neighbors_are_geometric(self):
        net = simple_network()
        # range 1.2: node 0 reaches 1 (d=1) and 3 (d=1), not 2 (d=2).
        assert net.neighbors(0) == frozenset({1, 3})
        assert net.neighbors(2) == frozenset({1})

    def test_in_out_neighbors_follow_links(self):
        net = simple_network()
        assert net.out_neighbors(0) == (1, 3)
        assert net.in_neighbors(0) == (1,)

    def test_conflict_neighbors_include_shared_receiver(self):
        net = simple_network()
        # Nodes 2 and 0 are out of range but share neighbor 1.
        assert 2 in net.conflict_neighbors(0)
        assert 0 in net.conflict_neighbors(2)

    def test_average_probability(self):
        net = simple_network()
        assert net.average_link_probability() == pytest.approx(
            (0.8 + 0.7 + 0.5 + 0.9) / 4
        )


class TestSubNetworkView:
    def test_restriction(self):
        net = simple_network()
        view = net.subnetwork(frozenset({0, 1, 2}))
        assert view.nodes() == (0, 1, 2)
        assert view.probability(0, 3) == 0.0
        assert view.probability(0, 1) == 0.8
        assert view.out_neighbors(0) == (1,)
        assert view.neighbors(0) == frozenset({1})

    def test_interferers_see_full_network(self):
        net = simple_network()
        view = net.subnetwork(frozenset({0, 1, 2}))
        assert view.interferers(0) == frozenset({1, 3})

    def test_invalid_node_rejected(self):
        net = simple_network()
        with pytest.raises(ValueError):
            net.subnetwork(frozenset({99}))

    def test_links_iterator(self):
        net = simple_network()
        view = net.subnetwork(frozenset({0, 1}))
        assert sorted(view.links()) == [(0, 1, 0.8), (1, 0, 0.7)]


class TestNetworkx:
    def test_export_with_etx(self):
        net = simple_network()
        graph = net.to_networkx(weight="etx")
        assert graph.number_of_edges() == 4
        assert graph[0][1]["etx"] == pytest.approx(1 / 0.8)
        assert graph[0][1]["probability"] == 0.8


class TestCanonicalTopologies:
    def test_diamond_relays_out_of_range(self):
        net = diamond_topology()
        assert 2 not in net.neighbors(1)  # u and v cannot hear each other
        assert 1 in net.neighbors(0) and 2 in net.neighbors(0)
        assert 1 in net.neighbors(3) and 2 in net.neighbors(3)

    def test_diamond_with_direct_link(self):
        net = diamond_topology(p_st=0.1)
        assert net.has_link(0, 3)

    def test_chain_structure(self):
        net = chain_topology((0.5, 0.6, 0.7))
        assert net.link_count() == 3
        assert net.probability(0, 1) == 0.5
        assert net.probability(2, 3) == 0.7

    def test_chain_overhearing_bounds(self):
        with pytest.raises(ValueError, match="two hops"):
            chain_topology((0.5, 0.5, 0.5), overhearing={(0, 3): 0.1})

    def test_chain_bad_probability(self):
        with pytest.raises(ValueError):
            chain_topology((0.0,))

    def test_fig1_sample(self):
        net = fig1_sample_topology()
        assert net.node_count == 6
        assert net.link_count() == 9
        assert net.capacity == 1e5

    def test_network_from_links_single_collision_domain(self):
        net = network_from_links({(0, 1): 0.5, (1, 2): 0.5})
        for i in net.nodes():
            others = set(net.nodes()) - {i}
            assert net.neighbors(i) == frozenset(others)

    def test_network_from_links_empty_rejected(self):
        with pytest.raises(ValueError):
            network_from_links({})


class TestRandomNetwork:
    def test_determinism(self):
        a = random_network(50, rng=RngFactory(5).derive("t"))
        b = random_network(50, rng=RngFactory(5).derive("t"))
        assert a.link_count() == b.link_count()
        assert sorted(a.links()) == sorted(b.links())

    def test_density_parameter(self):
        net = random_network(200, neighbors_per_node=5.0, rng=RngFactory(6).derive("t"))
        counts = [len(net.neighbors(i)) for i in net.nodes()]
        assert 2.5 <= np.mean(counts) <= 7.5

    def test_symmetric_mode(self):
        net = random_network(60, symmetric=True, rng=RngFactory(7).derive("t"))
        for i, j, p in net.links():
            if net.has_link(j, i):
                assert net.probability(j, i) == p
