"""Scenario specs, timelines and re-planning policies."""

import numpy as np
import pytest

from repro.scenario import (
    DriftTriggeredPolicy,
    EpochObservation,
    ObliviousPolicy,
    PeriodicPolicy,
    ScenarioEvent,
    ScenarioSpec,
    ScenarioTimeline,
    builtin_scenario,
    load_scenario,
    make_policy,
)
from repro.topology.dynamics import quality_drift
from repro.topology.random_network import diamond_topology, random_network
from repro.util.rng import RngFactory


def _observation(epoch=0, time=10.0, drift=0.0):
    return EpochObservation(epoch=epoch, time=time, drift=drift)


class TestScenarioEvent:
    def test_drift_needs_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            ScenarioEvent(at=1.0, kind="drift")

    def test_fail_needs_node(self):
        with pytest.raises(ValueError, match="node id"):
            ScenarioEvent(at=1.0, kind="fail")

    def test_load_needs_fraction(self):
        with pytest.raises(ValueError, match="cbr_fraction"):
            ScenarioEvent(at=1.0, kind="load", cbr_fraction=1.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            ScenarioEvent(at=1.0, kind="earthquake")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            ScenarioEvent(at=-1.0, kind="drift", sigma=0.1)

    def test_dict_round_trip(self):
        event = ScenarioEvent(at=5.0, kind="fail", node=3)
        assert ScenarioEvent.from_dict(event.as_dict()) == event

    def test_session_events_need_session_id(self):
        with pytest.raises(ValueError, match="session_id"):
            ScenarioEvent(at=1.0, kind="session_arrive")
        with pytest.raises(ValueError, match="session_id"):
            ScenarioEvent(at=1.0, kind="session_depart", session_id=-1)

    def test_session_arrive_endpoints_validated(self):
        with pytest.raises(ValueError, match="differ"):
            ScenarioEvent(
                at=1.0,
                kind="session_arrive",
                session_id=1,
                source=4,
                destination=4,
            )
        with pytest.raises(ValueError, match=">= 0"):
            ScenarioEvent(
                at=1.0, kind="session_arrive", session_id=1, source=-2
            )

    def test_session_event_dict_round_trip(self):
        event = ScenarioEvent(
            at=7.5,
            kind="session_arrive",
            session_id=2,
            source=0,
            destination=9,
        )
        payload = event.as_dict()
        assert payload["session_id"] == 2
        assert ScenarioEvent.from_dict(payload) == event
        depart = ScenarioEvent(at=9.0, kind="session_depart", session_id=2)
        assert "source" not in depart.as_dict()
        assert ScenarioEvent.from_dict(depart.as_dict()) == depart


class TestScenarioSpec:
    def test_events_must_be_sorted(self):
        with pytest.raises(ValueError, match="sorted"):
            ScenarioSpec(
                name="x",
                duration=100.0,
                epoch_seconds=10.0,
                events=(
                    ScenarioEvent(at=50.0, kind="drift", sigma=0.1),
                    ScenarioEvent(at=20.0, kind="drift", sigma=0.1),
                ),
            )

    def test_event_beyond_duration_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            ScenarioSpec(
                name="x",
                duration=10.0,
                epoch_seconds=5.0,
                events=(ScenarioEvent(at=10.0, kind="drift", sigma=0.1),),
            )

    def test_epoch_must_fit_duration(self):
        with pytest.raises(ValueError, match="epoch_seconds"):
            ScenarioSpec(name="x", duration=10.0, epoch_seconds=20.0)

    def test_epoch_count_covers_duration(self):
        spec = ScenarioSpec(name="x", duration=95.0, epoch_seconds=10.0)
        assert spec.epoch_count == 10

    def test_events_between(self):
        spec = builtin_scenario("drift", duration=120.0, epoch_seconds=10.0)
        assert len(spec.events_between(30.0, 40.0)) == 1
        assert spec.events_between(0.0, 30.0) == ()

    def test_json_round_trip(self, tmp_path):
        spec = ScenarioSpec(
            name="mixed",
            duration=60.0,
            epoch_seconds=6.0,
            events=(
                ScenarioEvent(at=10.0, kind="drift", sigma=0.4),
                ScenarioEvent(at=20.0, kind="fail", node=2),
                ScenarioEvent(at=30.0, kind="load", cbr_fraction=0.25),
                ScenarioEvent(at=40.0, kind="recover", node=2),
            ),
        )
        path = tmp_path / "scenario.json"
        spec.to_json(path)
        assert ScenarioSpec.from_json(path) == spec

    def test_builtin_names(self):
        assert builtin_scenario("calm").events == ()
        assert len(builtin_scenario("drift").events) == 2
        with pytest.raises(ValueError, match="unknown builtin"):
            builtin_scenario("apocalypse")

    def test_load_scenario_resolves_file(self, tmp_path):
        spec = builtin_scenario("drift")
        path = tmp_path / "s.json"
        spec.to_json(path)
        assert load_scenario(str(path)) == spec
        with pytest.raises(ValueError, match="no such file"):
            load_scenario(str(tmp_path / "missing.json"))


class TestScenarioTimeline:
    def _network(self, seed=1, nodes=25):
        return random_network(nodes, rng=RngFactory(seed).derive("t"))

    def test_drift_changes_qualities(self):
        net = self._network()
        spec = ScenarioSpec(
            name="d",
            duration=100.0,
            epoch_seconds=10.0,
            events=(ScenarioEvent(at=5.0, kind="drift", sigma=0.5),),
        )
        timeline = ScenarioTimeline(net, spec, rng=np.random.default_rng(0))
        assert not timeline.advance_to(4.0)
        assert timeline.network is net
        assert timeline.advance_to(5.0)
        assert quality_drift(net, timeline.network) > 0.0
        # Geometry preserved.
        assert np.array_equal(timeline.network.positions, net.positions)

    def test_fail_removes_links_and_recover_restores(self):
        net = self._network()
        degree = {n: 0 for n in net.nodes()}
        for i, j, _ in net.links():
            degree[i] += 1
            degree[j] += 1
        node = max(degree, key=lambda n: degree[n])
        spec = ScenarioSpec(
            name="f",
            duration=100.0,
            epoch_seconds=10.0,
            events=(
                ScenarioEvent(at=10.0, kind="fail", node=node),
                ScenarioEvent(at=20.0, kind="recover", node=node),
            ),
        )
        timeline = ScenarioTimeline(net, spec)
        assert timeline.advance_to(10.0)
        assert timeline.failed_nodes == (node,)
        downed = timeline.network
        assert all(node not in (i, j) for i, j, _ in downed.links())
        assert downed.node_count == net.node_count
        assert timeline.advance_to(20.0)
        assert timeline.failed_nodes == ()
        assert sorted(timeline.network.links()) == sorted(net.links())

    def test_double_fail_is_idempotent(self):
        net = self._network()
        spec = ScenarioSpec(
            name="ff",
            duration=100.0,
            epoch_seconds=10.0,
            events=(
                ScenarioEvent(at=10.0, kind="fail", node=0),
                ScenarioEvent(at=20.0, kind="fail", node=0),
            ),
        )
        timeline = ScenarioTimeline(net, spec)
        timeline.advance_to(50.0)
        assert timeline.failed_nodes == (0,)

    def test_recover_without_fail_is_noop(self):
        net = self._network()
        spec = ScenarioSpec(
            name="r",
            duration=100.0,
            epoch_seconds=10.0,
            events=(ScenarioEvent(at=10.0, kind="recover", node=0),),
        )
        timeline = ScenarioTimeline(net, spec)
        assert not timeline.advance_to(50.0)
        assert timeline.network is net

    def test_load_event_sets_fraction_without_topology_change(self):
        net = self._network()
        spec = ScenarioSpec(
            name="l",
            duration=100.0,
            epoch_seconds=10.0,
            events=(ScenarioEvent(at=10.0, kind="load", cbr_fraction=0.25),),
        )
        timeline = ScenarioTimeline(net, spec)
        assert timeline.cbr_fraction is None
        assert not timeline.advance_to(10.0)
        assert timeline.cbr_fraction == 0.25
        assert timeline.network is net

    def test_session_events_do_not_touch_topology_or_load(self):
        # Session churn is consumed by run_multi_session; the topology
        # timeline must pass it through without side effects.
        net = self._network()
        spec = ScenarioSpec(
            name="churn",
            duration=100.0,
            epoch_seconds=10.0,
            events=(
                ScenarioEvent(at=5.0, kind="load", cbr_fraction=0.25),
                ScenarioEvent(at=10.0, kind="session_arrive", session_id=2),
                ScenarioEvent(at=20.0, kind="session_depart", session_id=1),
            ),
        )
        timeline = ScenarioTimeline(net, spec)
        timeline.advance_to(5.0)
        assert timeline.cbr_fraction == 0.25
        assert not timeline.advance_to(50.0)
        assert timeline.network is net
        assert timeline.cbr_fraction == 0.25  # not reset by churn events

    def test_fixed_seed_reproduces_topology_sequence(self):
        net = self._network()
        spec = builtin_scenario("drift", duration=120.0, epoch_seconds=10.0)
        first = ScenarioTimeline(net, spec, rng=np.random.default_rng(5))
        second = ScenarioTimeline(net, spec, rng=np.random.default_rng(5))
        first.advance_to(120.0)
        second.advance_to(120.0)
        assert sorted(first.network.links()) == sorted(second.network.links())


class TestNonStrictDrift:
    def test_union_semantics_registers_failures(self):
        net = diamond_topology()
        spec = ScenarioSpec(
            name="f",
            duration=10.0,
            epoch_seconds=1.0,
            events=(ScenarioEvent(at=1.0, kind="fail", node=1),),
        )
        timeline = ScenarioTimeline(net, spec)
        timeline.advance_to(1.0)
        with pytest.raises(ValueError, match="different link sets"):
            quality_drift(net, timeline.network)
        drift = quality_drift(net, timeline.network, strict=False)
        assert drift > 0.0

    def test_union_agrees_with_strict_on_equal_sets(self):
        net = diamond_topology()
        other = diamond_topology(p_ut=0.9)
        assert quality_drift(net, other) == pytest.approx(
            quality_drift(net, other, strict=False)
        )


class TestPolicies:
    def test_oblivious_never_fires(self):
        policy = ObliviousPolicy()
        assert not policy.should_replan(_observation(drift=1.0))

    def test_periodic_counts_epochs(self):
        policy = PeriodicPolicy(every=3)
        fires = [policy.should_replan(_observation(epoch=e)) for e in range(6)]
        assert fires == [False, False, True, False, False, True]

    def test_drift_threshold(self):
        policy = DriftTriggeredPolicy(threshold=0.05)
        assert not policy.should_replan(_observation(drift=0.04))
        assert policy.should_replan(_observation(drift=0.05))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PeriodicPolicy(every=0)
        with pytest.raises(ValueError):
            DriftTriggeredPolicy(threshold=0.0)

    def test_make_policy_parses_specs(self):
        assert isinstance(make_policy("oblivious"), ObliviousPolicy)
        assert make_policy("periodic:4").every == 4
        assert make_policy("periodic").every == 1
        assert make_policy("drift:0.1").threshold == pytest.approx(0.1)
        assert make_policy("drift").threshold == pytest.approx(0.02)
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("chaotic")
        with pytest.raises(ValueError, match="no argument"):
            make_policy("oblivious:2")
