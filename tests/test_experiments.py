"""Experiment harnesses: smoke-scale runs of every figure."""

import pytest

from repro.experiments.coding_speed import measure_codec, run_coding_speed
from repro.experiments.common import (
    CampaignConfig,
    build_network,
    pick_sessions,
    run_campaign,
)
from repro.experiments.convergence_stats import run_convergence_stats
from repro.experiments.fig1_convergence import run_fig1
from repro.experiments.fig2_throughput import run_fig2
from repro.experiments.fig3_queue import run_fig3
from repro.experiments.fig4_utility import run_fig4
from repro.experiments.fig5_adaptation import Fig5Config, run_fig5
from repro.coding.gf256 import GF256
from repro.coding.gf256_baseline import GF256Baseline

SMOKE = CampaignConfig(
    node_count=80,
    sessions=3,
    min_hops=3,
    max_hops=10,
    session_seconds=60.0,
    target_generations=2,
    seed=17,
)


@pytest.fixture(scope="module")
def smoke_campaign():
    return run_campaign(SMOKE)


class TestCampaign:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(node_count=2)
        with pytest.raises(ValueError):
            CampaignConfig(sessions=0)
        with pytest.raises(ValueError):
            CampaignConfig(min_hops=5, max_hops=3)
        with pytest.raises(ValueError):
            CampaignConfig(quality="medium")

    def test_paper_scale_parameters(self):
        config = CampaignConfig.paper_scale()
        assert config.node_count == 300
        assert config.sessions == 300
        assert config.session_seconds == 800.0

    def test_network_quality_regimes(self):
        _, lossy = build_network(CampaignConfig(node_count=100, quality="lossy"))
        _, high = build_network(CampaignConfig(node_count=100, quality="high"))
        assert lossy.average_link_probability() < high.average_link_probability()

    def test_sessions_respect_hop_bounds(self):
        config = SMOKE
        _, network = build_network(config)
        for _, _, plan in pick_sessions(config, network):
            assert config.min_hops <= plan.hop_count <= config.max_hops

    def test_campaign_records_all_protocols(self, smoke_campaign):
        assert len(smoke_campaign.records) == SMOKE.sessions
        for record in smoke_campaign.records:
            assert set(record.results) == {"omnc", "more", "oldmore", "etx"}

    def test_gain_and_queue_accessors(self, smoke_campaign):
        for protocol in ("omnc", "more", "oldmore"):
            gains = smoke_campaign.gains(protocol)
            assert len(gains) <= SMOKE.sessions
            assert all(g >= 0 for g in gains)
            queues = smoke_campaign.per_node_queues(protocol)
            assert all(q >= 0 for q in queues)

    def test_utility_accessor(self, smoke_campaign):
        nodes, paths = smoke_campaign.utilities("omnc")
        assert len(nodes) == len(paths) == SMOKE.sessions
        assert all(0 <= u <= 1 for u in nodes)
        assert all(0 <= u <= 1 for u in paths)


class TestFig1:
    def test_series_structure(self):
        series = run_fig1()
        assert series.iterations[0] == 1
        assert series.settled_iteration <= len(series.iterations)
        for values in series.rates_bps.values():
            assert len(values) == len(series.iterations)

    def test_recovered_close_to_lp(self):
        series = run_fig1()
        assert series.recovered_throughput_bps == pytest.approx(
            series.lp_throughput_bps, rel=0.15
        )

    def test_converges_within_paper_ballpark(self):
        # Paper: convergence within a few tens of iterations; average 91
        # over the campaign.  The sample topology must settle within the
        # iteration cap.
        series = run_fig1()
        assert len(series.iterations) <= 400


class TestFigures:
    def test_fig2_smoke(self):
        result = run_fig2("lossy", SMOKE)
        for protocol in ("omnc", "more", "oldmore"):
            assert result.distributions[protocol].count > 0
            assert result.mean_gain(protocol) >= 0

    def test_fig3_smoke(self):
        result = run_fig3(SMOKE)
        assert result.mean_queue("omnc") >= 0
        assert result.mean_queue("more") >= 0

    def test_fig4_smoke(self):
        result = run_fig4(SMOKE)
        for protocol in ("omnc", "more", "oldmore"):
            assert 0 <= result.node_utility[protocol].mean <= 1
            assert 0 <= result.path_utility[protocol].mean <= 1

    def test_fig4_oldmore_prunes(self):
        result = run_fig4(SMOKE)
        assert (
            result.node_utility["oldmore"].mean
            <= result.node_utility["omnc"].mean + 1e-9
        )

    def test_convergence_stats_smoke(self):
        stats = run_convergence_stats(SMOKE)
        assert stats.iterations.count > 0
        assert stats.lp_ratio.mean == pytest.approx(1.0, abs=0.35)


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self):
        return run_fig5(Fig5Config.smoke())

    def test_all_policies_ran_full_duration(self, fig5):
        assert set(fig5.runs) == {"oblivious", "periodic", "drift"}
        for run in fig5.runs.values():
            # Control-plane stalls consume session time, so a re-plan in
            # the last epoch may push the end past the nominal duration
            # by at most that stall.
            assert run.session.duration >= fig5.config.duration * 0.99
            assert run.session.duration <= (
                fig5.config.duration + run.replan_seconds + 1.0
            )

    def test_oblivious_never_replans(self, fig5):
        assert fig5.runs["oblivious"].replans == 0
        assert fig5.runs["oblivious"].replan_seconds == 0.0

    def test_reactive_policies_pay_for_replans(self, fig5):
        for key in ("periodic", "drift"):
            run = fig5.runs[key]
            assert run.replans >= 1
            assert run.replan_seconds > 0.0
            # One cold start plus one warm re-plan per successful replan.
            assert len(run.planner_iterations) == run.replans + 1

    def test_scenario_fails_a_real_relay(self, fig5):
        assert fig5.failed_node not in (fig5.source, fig5.destination)
        kinds = [event.kind for event in fig5.scenario.events]
        assert kinds == ["drift", "fail"]
        assert fig5.scenario.events[1].node == fig5.failed_node


class TestCodingSpeed:
    def test_accelerated_beats_baseline(self):
        # best-of-3: a single measurement at this tiny shape lasts ~ms,
        # shorter than the noise spells shared runners exhibit.
        accelerated = measure_codec(GF256, 16, 128, repeats=3)
        baseline = measure_codec(GF256Baseline, 16, 128, repeats=3)
        assert accelerated > baseline * 3  # the paper's lower bound

    def test_run_coding_speed_points(self):
        points = run_coding_speed(shapes=[(8, 64)])
        assert len(points) == 1
        assert points[0].speedup > 1.0


class TestFig7:
    @pytest.fixture(scope="class")
    def fig7(self):
        from repro.experiments.fig7_finite_length import Fig7Config, run_fig7

        return run_fig7(
            Fig7Config(
                block_size=256,
                losses=(0.0, 0.3),
                window_seconds=12.0,
                decode_trials=6,
                decode_blocks=12,
            )
        )

    def test_payloads_identical_in_every_cell(self, fig7):
        assert all(
            point.payloads_identical
            for point in fig7.decode_costs.values()
        )

    def test_systematic_slashes_eliminations_at_zero_loss(self, fig7):
        assert fig7.elimination_reduction(0.0) >= 5.0
        assert fig7.decode_costs[(0.0, True)].eliminations_per_generation == 0.0

    def test_all_arms_measured_at_every_loss(self, fig7):
        for loss in fig7.config.losses:
            for arm in ("static", "adaptive", "systematic"):
                point = fig7.goodput[(loss, arm)]
                assert point.goodput_bps >= 0.0
        assert fig7.goodput[(0.3, "adaptive")].blocks < 40
        assert fig7.goodput[(0.3, "systematic")].systematic

    def test_model_overhead_monotone_in_loss(self, fig7):
        losses = fig7.config.losses
        for index, _candidate in enumerate(fig7.config.candidates):
            ratios = [
                fig7.model_overhead[loss][index][1] for loss in losses
            ]
            assert all(b > a for a, b in zip(ratios, ratios[1:]))


class TestFig6EndpointLayouts:
    @pytest.fixture(scope="class")
    def mesh(self):
        from repro.topology.random_network import random_network
        from repro.util.rng import RngFactory

        return random_network(
            24, neighbors_per_node=9.0,
            rng=RngFactory(2008).derive("topology"),
        )

    def test_disjoint_pairs_share_no_nodes(self, mesh):
        from repro.experiments.fig6_multisession import fig6_endpoints

        pairs = fig6_endpoints(mesh, 3)
        nodes = [node for pair in pairs for node in pair]
        assert len(nodes) == len(set(nodes))

    def test_opposing_pairs_mirror_and_enable_xor(self, mesh):
        from repro.experiments.fig6_multisession import fig6_endpoints
        from repro.protocols.intersession import plan_intersession_pairs
        from repro.protocols.more import plan_more

        pairs = fig6_endpoints(mesh, 2, layout="opposing")
        assert pairs[1] == (pairs[0][1], pairs[0][0])
        plans = {
            sid: plan_more(mesh, *endpoints)
            for sid, endpoints in enumerate(pairs, start=1)
        }
        assert plan_intersession_pairs(plans)

    def test_unknown_layout_rejected(self, mesh):
        from repro.experiments.fig6_multisession import fig6_endpoints

        with pytest.raises(ValueError, match="layout"):
            fig6_endpoints(mesh, 2, layout="spiral")
