"""Sharded emulation: spatial partitioning and the digest oracle.

The tentpole invariant: ``shards=1`` (the serial engine in per-node RNG
mode, run in-process) and ``shards=N`` (spatially partitioned workers
synchronized at slot barriers) produce **bit-identical** results —
same :class:`SessionResult` digest, same trace digest — on every
topology, fidelity, and interference model.
"""

import numpy as np
import pytest

from repro.emulator.session import SessionConfig
from repro.emulator.shard import (
    run_sharded_session,
    session_digest,
    trace_digest,
)
from repro.emulator.trace import SessionTracer
from repro.protocols.etx_routing import plan_etx_route
from repro.protocols.omnc import plan_omnc
from repro.routing.node_selection import NodeSelectionError
from repro.topology.geometry import pairwise_distances
from repro.topology.partition import (
    SpatialGrid,
    partition_network,
    partition_positions,
)
from repro.topology.random_network import random_network
from repro.util.rng import RngFactory

ORACLE_SEEDS = (1, 2008, 77)


def _planned_mesh(seed, nodes=60):
    """A seeded mesh plus an OMNC plan toward a reachable destination."""
    network = random_network(nodes, rng=seed)
    for destination in range(network.node_count - 1, 0, -1):
        try:
            return network, plan_omnc(network, 0, destination)
        except NodeSelectionError:
            continue
    raise RuntimeError(f"seed {seed}: no reachable destination")


def _quick_config(**overrides):
    defaults = dict(
        blocks=6, block_size=256, max_seconds=30.0, target_generations=2
    )
    defaults.update(overrides)
    return SessionConfig(**defaults)


def _digests(network, plan, shards, *, config, seed):
    tracer = SessionTracer(capacity=500_000)
    result = run_sharded_session(
        network,
        plan,
        shards=shards,
        config=config,
        rng=RngFactory(seed),
        tracer=tracer,
    )
    return session_digest(result), trace_digest(tracer), result


class TestSpatialGrid:
    def test_neighborhoods_bit_identical_to_dense_path(self):
        network = random_network(80, rng=13)
        positions = network.positions
        dense = pairwise_distances(positions)
        grid = SpatialGrid(positions, network.communication_range)
        for node in range(network.node_count):
            ids, distances = grid.neighbors_within(
                node, network.communication_range
            )
            row = dense[node]
            expected = np.flatnonzero(
                (row <= network.communication_range)
                & (np.arange(network.node_count) != node)
            )
            assert ids.tolist() == expected.tolist()
            # Bit-identical, not approximately equal: the grid must
            # reproduce the dense matrix's exact float64 values.
            assert distances.tolist() == row[expected].tolist()

    def test_radius_beyond_cell_size_rejected(self):
        grid = SpatialGrid(np.zeros((3, 2)), 10.0)
        with pytest.raises(ValueError, match="exceeds"):
            grid.neighbors_within(0, 11.0)


class TestPartition:
    def test_strips_cover_all_nodes_disjointly(self):
        network = random_network(90, rng=5)
        partition = partition_network(network, 4)
        seen = [node for shard in partition.owned for node in shard]
        assert sorted(seen) == list(range(network.node_count))
        for shard, nodes in enumerate(partition.owned):
            assert all(partition.owner[node] == shard for node in nodes)

    def test_halo_is_exactly_cross_cut_neighborhood(self):
        network = random_network(70, rng=3)
        partition = partition_network(network, 3)
        for shard in range(partition.shards):
            owned = set(partition.owned[shard])
            expected = set()
            for node in owned:
                for neighbor in network.neighbors(node):
                    if neighbor not in owned:
                        expected.add(neighbor)
            assert set(partition.halo[shard]) == expected

    def test_deterministic_and_balanced(self):
        network = random_network(50, rng=8)
        a = partition_network(network, 4)
        b = partition_network(network, 4)
        assert a == b
        sizes = [len(nodes) for nodes in a.owned]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_owns_everything(self):
        network = random_network(20, rng=1)
        partition = partition_network(network, 1)
        assert partition.owned[0] == tuple(range(20))
        assert partition.halo[0] == ()
        assert partition.cut_links == 0
        assert partition.halo_fraction() == 0.0

    def test_shard_count_validation(self):
        with pytest.raises(ValueError, match="shards must be"):
            partition_positions(np.zeros((4, 2)), 0)
        with pytest.raises(ValueError, match="cannot cut"):
            partition_positions(np.zeros((4, 2)), 5)


class TestShardedOracle:
    @pytest.mark.parametrize("seed", ORACLE_SEEDS)
    def test_shards_equal_serial_oracle(self, seed):
        network, plan = _planned_mesh(seed)
        config = _quick_config()
        digests = {
            shards: _digests(network, plan, shards, config=config, seed=seed)
            for shards in (1, 2, 4)
        }
        reference = digests[1]
        assert reference[2].generations_decoded > 0  # the run did work
        for shards in (2, 4):
            assert digests[shards][0] == reference[0], f"result@{shards}"
            assert digests[shards][1] == reference[1], f"trace@{shards}"

    def test_exact_fidelity_oracle(self):
        network, plan = _planned_mesh(1)
        config = _quick_config(coding_fidelity="exact")
        serial = _digests(network, plan, 1, config=config, seed=4)
        sharded = _digests(network, plan, 3, config=config, seed=4)
        assert sharded[:2] == serial[:2]

    @pytest.mark.parametrize("interference", ["capture", "conflict_free"])
    def test_interference_model_oracle(self, interference):
        network, plan = _planned_mesh(1)
        config = _quick_config(interference=interference)
        serial = _digests(network, plan, 1, config=config, seed=4)
        sharded = _digests(network, plan, 2, config=config, seed=4)
        assert sharded[:2] == serial[:2]

    def test_unicast_oracle(self):
        network, _ = _planned_mesh(1)
        plan = plan_etx_route(network, 0, network.node_count - 1)
        config = SessionConfig(max_seconds=25.0)
        serial = _digests(network, plan, 1, config=config, seed=4)
        sharded = _digests(network, plan, 2, config=config, seed=4)
        assert sharded[:2] == serial[:2]
        assert serial[2].packets_delivered > 0

    def test_repeated_run_reproduces_exactly(self):
        network, plan = _planned_mesh(2008)
        config = _quick_config()
        first = _digests(network, plan, 2, config=config, seed=6)
        second = _digests(network, plan, 2, config=config, seed=6)
        assert first[:2] == second[:2]


class TestShardedValidation:
    def test_more_shards_than_nodes_rejected(self):
        network, plan = _planned_mesh(1, nodes=40)
        with pytest.raises(ValueError, match="cannot run"):
            run_sharded_session(
                network, plan, shards=41, config=_quick_config()
            )
