"""The public warm-start API: dual prices out, fewer iterations back in.

Sec. 4 of the paper concedes that drift forces the rate allocation to be
"re-initiated".  The :class:`RateControlDuals` surface makes that
re-initiation cheap: a re-plan seeded with the previous run's duals must
re-converge in measurably fewer subgradient iterations than a cold start.
"""

import numpy as np
import pytest

from repro.optimization.problem import session_graph_from_network
from repro.optimization.rate_control import (
    RateControlAlgorithm,
    RateControlDuals,
)
from repro.protocols.omnc import plan_omnc_detailed
from repro.topology.dynamics import perturb_link_qualities
from repro.topology.random_network import fig1_sample_topology


def fig1_graph():
    return session_graph_from_network(fig1_sample_topology(), 0, 5)


class TestDualsExposure:
    def test_result_carries_duals(self):
        graph = fig1_graph()
        result = RateControlAlgorithm(graph).run()
        duals = result.duals
        assert duals is not None
        assert duals.iteration == result.iterations
        assert set(duals.link_prices) == set(graph.links)
        assert all(v >= 0 for v in duals.link_prices.values())
        assert all(v >= 0 for v in duals.congestion_prices.values())
        assert all(v >= 0 for v in duals.union_prices.values())
        # The accessor views mirror the duals object.
        assert result.link_prices == duals.link_prices
        assert result.congestion_prices == duals.congestion_prices

    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError, match="negative link price"):
            RateControlDuals(
                link_prices={(0, 1): -0.1},
                congestion_prices={},
                union_prices={},
                rates={},
                iteration=0,
            )
        with pytest.raises(ValueError, match="negative congestion price"):
            RateControlDuals(
                link_prices={},
                congestion_prices={2: -1.0},
                union_prices={},
                rates={},
                iteration=0,
            )
        with pytest.raises(ValueError, match="iteration"):
            RateControlDuals({}, {}, {}, {}, iteration=-1)

    def test_plan_report_exposes_duals(self):
        report = plan_omnc_detailed(fig1_sample_topology(), 0, 5)
        assert report.duals is not None
        assert report.duals.iteration == report.plan.iterations

    def test_centralized_planner_has_no_duals(self):
        report = plan_omnc_detailed(
            fig1_sample_topology(), 0, 5, planner="centralized"
        )
        assert report.duals is None


class TestWarmStartConvergence:
    def test_warm_restart_is_faster_after_drift(self):
        network = fig1_sample_topology()
        cold = plan_omnc_detailed(network, 0, 5)
        drifted = perturb_link_qualities(
            network, sigma=0.2, rng=np.random.default_rng(1)
        )
        recold = plan_omnc_detailed(drifted, 0, 5)
        warm = plan_omnc_detailed(drifted, 0, 5, warm_start=cold.duals)
        assert warm.converged
        assert warm.plan.iterations < recold.plan.iterations

    def test_same_topology_restart_converges_immediately(self):
        graph = fig1_graph()
        cold = RateControlAlgorithm(graph).run()
        warm = RateControlAlgorithm(graph, warm_start=cold.duals).run()
        assert warm.converged
        assert warm.iterations < cold.iterations

    def test_step_schedule_continues_across_restarts(self):
        graph = fig1_graph()
        cold = RateControlAlgorithm(graph).run()
        warm = RateControlAlgorithm(graph, warm_start=cold.duals).run()
        # The diminishing theta(t) schedule resumes where the producing
        # run stopped, so the accumulated offset is additive.
        assert warm.duals.iteration == cold.duals.iteration + warm.iterations

    def test_warm_rates_stay_feasible(self):
        network = fig1_sample_topology()
        cold = plan_omnc_detailed(network, 0, 5)
        drifted = perturb_link_qualities(
            network, sigma=0.3, rng=np.random.default_rng(2)
        )
        warm = plan_omnc_detailed(drifted, 0, 5, warm_start=cold.duals)
        assert all(rate >= 0 for rate in warm.plan.rates.values())
        assert warm.plan.predicted_throughput > 0
