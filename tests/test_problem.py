"""Session graph construction and accessors."""

import pytest

from repro.optimization.problem import (
    SessionGraph,
    session_graph_from_network,
    session_graph_from_selection,
)
from repro.routing.node_selection import select_forwarders
from repro.topology.random_network import diamond_topology, fig1_sample_topology


def diamond_graph():
    return session_graph_from_network(diamond_topology(), 0, 3)


class TestSessionGraph:
    def test_from_network(self):
        graph = diamond_graph()
        assert graph.node_count == 4
        assert graph.link_count == 4
        assert graph.source == 0
        assert graph.destination == 3

    def test_supply(self):
        graph = diamond_graph()
        assert graph.supply(0) == 1
        assert graph.supply(3) == -1
        assert graph.supply(1) == 0

    def test_out_in_links(self):
        graph = diamond_graph()
        assert graph.out_links(0) == ((0, 1), (0, 2))
        assert graph.in_links(3) == ((1, 3), (2, 3))

    def test_transmitters_exclude_sink_only_nodes(self):
        graph = diamond_graph()
        assert graph.transmitters() == (0, 1, 2)

    def test_mac_constrained_excludes_source(self):
        graph = diamond_graph()
        assert 0 not in graph.mac_constrained_nodes()
        assert set(graph.mac_constrained_nodes()) == {1, 2, 3}

    def test_union_probability(self):
        graph = diamond_graph()
        # S has links 0.6 and 0.5: q = 1 - 0.4*0.5 = 0.8.
        assert graph.union_probability(0) == pytest.approx(0.8)
        # Relay 1 has one link at 0.7.
        assert graph.union_probability(1) == pytest.approx(0.7)
        # Destination transmits nothing.
        assert graph.union_probability(3) == 0.0

    def test_denormalization(self):
        graph = diamond_graph()
        rates = graph.denormalize_rates({0: 0.5})
        assert rates[0] == pytest.approx(0.5 * graph.capacity)
        flows = graph.denormalize_flows({(0, 1): 0.25})
        assert flows[(0, 1)] == pytest.approx(0.25 * graph.capacity)

    def test_validation_same_endpoints(self):
        with pytest.raises(ValueError):
            SessionGraph(
                source=0,
                destination=0,
                nodes=(0,),
                links=(),
                probability={},
                neighbors={0: frozenset()},
                capacity=1.0,
            )

    def test_validation_unselected_link(self):
        with pytest.raises(ValueError):
            SessionGraph(
                source=0,
                destination=1,
                nodes=(0, 1),
                links=((0, 2),),
                probability={(0, 2): 0.5},
                neighbors={0: frozenset(), 1: frozenset()},
                capacity=1.0,
            )

    def test_validation_bad_probability(self):
        with pytest.raises(ValueError):
            SessionGraph(
                source=0,
                destination=1,
                nodes=(0, 1),
                links=((0, 1),),
                probability={(0, 1): 0.0},
                neighbors={0: frozenset(), 1: frozenset()},
                capacity=1.0,
            )


class TestFromSelection:
    def test_selection_graph_uses_dag_links(self):
        net = fig1_sample_topology()
        forwarders = select_forwarders(net, 0, 5)
        graph = session_graph_from_selection(net, forwarders)
        assert set(graph.links) == set(forwarders.dag_links)
        assert graph.capacity == net.capacity

    def test_neighbors_restricted_to_selection(self):
        net = fig1_sample_topology()
        forwarders = select_forwarders(net, 0, 5)
        graph = session_graph_from_selection(net, forwarders)
        for node in graph.nodes:
            assert graph.neighbors[node] <= forwarders.nodes

    def test_measured_probabilities_override(self):
        net = diamond_topology()
        forwarders = select_forwarders(net, 0, 3)
        measured = {link: 0.5 for link in forwarders.dag_links}
        graph = session_graph_from_selection(
            net, forwarders, probabilities=measured
        )
        for link in graph.links:
            assert graph.probability[link] == 0.5
