"""ETX metric and probe-based link measurement."""

import numpy as np
import pytest

from repro.routing.etx import (
    LinkProbeEstimator,
    etx_weights,
    expected_probe_error,
    link_etx,
    path_etx,
)
from repro.topology.random_network import chain_topology, random_network
from repro.util.rng import RngFactory


class TestLinkEtx:
    def test_perfect_link(self):
        assert link_etx(1.0) == 1.0

    def test_lossy_link(self):
        assert link_etx(0.5) == pytest.approx(2.0)

    def test_dead_link_infinite(self):
        assert link_etx(0.0) == float("inf")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            link_etx(1.5)
        with pytest.raises(ValueError):
            link_etx(-0.1)


class TestPathEtx:
    def test_sum_over_hops(self):
        net = chain_topology((0.5, 0.25))
        assert path_etx(net, (0, 1, 2)) == pytest.approx(2.0 + 4.0)

    def test_missing_link_infinite(self):
        net = chain_topology((0.5,))
        assert path_etx(net, (1, 0)) == float("inf")

    def test_trivial_path(self):
        net = chain_topology((0.5,))
        assert path_etx(net, (0,)) == 0.0

    def test_etx_weights_cover_all_links(self):
        net = chain_topology((0.5, 0.8))
        weights = etx_weights(net)
        assert weights[(0, 1)] == pytest.approx(2.0)
        assert weights[(1, 2)] == pytest.approx(1.25)
        assert len(weights) == net.link_count()


class TestProbeEstimator:
    def test_estimates_converge_with_many_probes(self):
        net = random_network(40, rng=RngFactory(3).derive("t"))
        estimator = LinkProbeEstimator(
            net, probe_count=5000, rng=RngFactory(3).derive("probe")
        )
        assert estimator.max_absolute_error() < 0.05

    def test_estimates_cached(self):
        net = chain_topology((0.5,))
        estimator = LinkProbeEstimator(net, probe_count=10, rng=np.random.default_rng(0))
        first = estimator.measure()
        second = estimator.measure()
        assert first == second

    def test_estimated_etx(self):
        net = chain_topology((0.5,))
        estimator = LinkProbeEstimator(
            net, probe_count=100000, rng=np.random.default_rng(1)
        )
        assert estimator.estimated_etx(0, 1) == pytest.approx(2.0, rel=0.1)

    def test_unobserved_link_zero(self):
        net = chain_topology((0.5,))
        estimator = LinkProbeEstimator(net, probe_count=10, rng=np.random.default_rng(2))
        assert estimator.estimated_probability(1, 0) == 0.0
        assert estimator.estimated_etx(1, 0) == float("inf")

    def test_invalid_probe_count(self):
        net = chain_topology((0.5,))
        with pytest.raises(ValueError):
            LinkProbeEstimator(net, probe_count=0)


class TestProbeError:
    def test_shrinks_with_probe_count(self):
        assert expected_probe_error(0.5, 400) < expected_probe_error(0.5, 100)

    def test_formula(self):
        assert expected_probe_error(0.5, 100) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_probe_error(1.5, 100)
        with pytest.raises(ValueError):
            expected_probe_error(0.5, 0)
