"""Multiple-unicast extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimization.multi_session import (
    MultiSessionRateControl,
    solve_multi_sunicast,
    solve_multi_sunicast_detailed,
)
from repro.optimization.problem import session_graph_from_network
from repro.optimization.rate_control import (
    RateControlConfig,
    multi_feasible_scaling,
)
from repro.optimization.sunicast import solve_sunicast
from repro.topology.graph import WirelessNetwork
from repro.topology.random_network import fig1_sample_topology


def two_sessions():
    net = fig1_sample_topology()
    return (
        session_graph_from_network(net, 0, 5),
        session_graph_from_network(net, 1, 5),
    )


class TestMultiSessionLP:
    def test_total_bounded_by_single_session_sum(self):
        g1, g2 = two_sessions()
        total, per = solve_multi_sunicast([g1, g2])
        solo1 = solve_sunicast(g1).throughput
        solo2 = solve_sunicast(g2).throughput
        # Sharing the channel can never beat the sessions run alone.
        assert total <= solo1 + solo2 + 1e-9
        assert len(per) == 2
        assert total == pytest.approx(sum(per))

    def test_single_session_reduces_to_sunicast(self):
        g1, _ = two_sessions()
        total, per = solve_multi_sunicast([g1])
        assert total == pytest.approx(solve_sunicast(g1).throughput, rel=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            solve_multi_sunicast([])


class TestMultiSessionRateControl:
    def test_both_sessions_get_positive_throughput(self):
        g1, g2 = two_sessions()
        result = MultiSessionRateControl([g1, g2]).run()
        assert all(t > 0.01 for t in result.throughputs)

    def test_fairness_vs_total_lp(self):
        # The proportional-fair distributed solution serves both sessions;
        # the max-total LP may starve one.  Total must stay in the same
        # ballpark as the LP total (subgradient overshoot tolerated).
        g1, g2 = two_sessions()
        result = MultiSessionRateControl([g1, g2]).run()
        total, _ = solve_multi_sunicast([g1, g2])
        assert result.total_throughput <= total * 1.35

    def test_capacity_mismatch_rejected(self):
        from dataclasses import replace

        g1, g2 = two_sessions()
        g2 = replace(g2, capacity=g2.capacity * 2)
        with pytest.raises(ValueError, match="capacity"):
            MultiSessionRateControl([g1, g2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiSessionRateControl([])

    def test_respects_iteration_cap(self):
        g1, g2 = two_sessions()
        config = RateControlConfig(max_iterations=10, min_iterations=1, patience=100)
        result = MultiSessionRateControl([g1, g2], config).run()
        assert result.iterations == 10
        assert not result.converged


def asymmetric_sessions(qualities):
    """Two sessions over a dense 6-node mesh with drawn link qualities.

    Every ordered pair gets its own quality, so p_ij != p_ji in
    general — the asymmetric-loss regime the LP must stay feasible in.
    """
    positions = [
        [0.0, 0.0],
        [30.0, 20.0],
        [30.0, -20.0],
        [60.0, 20.0],
        [60.0, -20.0],
        [90.0, 0.0],
    ]
    pairs = [
        (i, j) for i in range(6) for j in range(6) if i != j
    ]
    links = {pair: q for pair, q in zip(pairs, qualities)}
    net = WirelessNetwork(positions, links, 200.0)
    return (
        session_graph_from_network(net, 0, 5),
        session_graph_from_network(net, 5, 0),
    )


link_qualities = st.lists(
    st.floats(min_value=0.3, max_value=1.0),
    min_size=30,
    max_size=30,
)


class TestMultiSessionProperties:
    """LP feasibility and fairness-envelope properties on random
    asymmetric topologies (ISSUE 8 satellite)."""

    @given(link_qualities)
    @settings(max_examples=10, deadline=None)
    def test_lp_solution_is_mac_feasible(self, qualities):
        graphs = asymmetric_sessions(qualities)
        solution = solve_multi_sunicast_detailed(graphs)
        constrained = sorted(
            {n for g in graphs for n in g.mac_constrained_nodes()}
        )
        for node in constrained:
            load = 0.0
            for g, rates in zip(graphs, solution.broadcast_rates):
                if node not in g.nodes:
                    continue
                load += rates.get(node, 0.0)
                load += sum(
                    rates.get(j, 0.0) for j in g.neighbors[node]
                )
            assert load <= 1.0 + 1e-6

    @given(link_qualities)
    @settings(max_examples=10, deadline=None)
    def test_lp_throughputs_are_nonnegative_and_consistent(self, qualities):
        graphs = asymmetric_sessions(qualities)
        solution = solve_multi_sunicast_detailed(graphs)
        assert all(t >= -1e-9 for t in solution.throughputs)
        assert solution.total_throughput == pytest.approx(
            sum(solution.throughputs)
        )
        # The thin wrapper and the detailed solver agree exactly.
        total, per = solve_multi_sunicast(graphs)
        assert total == solution.total_throughput
        assert per == solution.throughputs

    @given(link_qualities)
    @settings(max_examples=10, deadline=None)
    def test_prop_fair_total_under_lp_envelope(self, qualities):
        graphs = asymmetric_sessions(qualities)
        result = MultiSessionRateControl(graphs).run()
        # The subgradient's recovered gamma claims are approximate (the
        # repair/rescale pipeline trims them before planning), so the
        # shared-MAC LP total is not a hard ceiling for them.  The sum of
        # *uncoupled* single-session LP optima is: each solo LP grants a
        # session the whole airtime, so claims past their sum would mean
        # the shared dual prices stopped coupling the sessions at all.
        # The 10% slack absorbs subgradient overshoot on near-degenerate
        # quality draws (observed up to ~5.5% over the envelope).
        solo_envelope = sum(solve_sunicast(g).throughput for g in graphs)
        assert result.total_throughput <= solo_envelope * 1.10
        assert all(t >= 0.0 for t in result.throughputs)

    @given(link_qualities, st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=10, deadline=None)
    def test_feasible_scaling_restores_mac_feasibility(
        self, qualities, inflation
    ):
        graphs = asymmetric_sessions(qualities)
        solution = solve_multi_sunicast_detailed(graphs)
        inflated = [
            {node: rate * inflation for node, rate in rates.items()}
            for rates in solution.broadcast_rates
        ]
        scaled, factor = multi_feasible_scaling(graphs, inflated)
        assert factor >= 1.0
        constrained = sorted(
            {n for g in graphs for n in g.mac_constrained_nodes()}
        )
        for node in constrained:
            load = 0.0
            for g, rates in zip(graphs, scaled):
                if node not in g.nodes:
                    continue
                load += rates.get(node, 0.0)
                load += sum(
                    rates.get(j, 0.0) for j in g.neighbors[node]
                )
            assert load <= 1.0 + 1e-9
