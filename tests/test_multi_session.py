"""Multiple-unicast extension."""

import pytest

from repro.optimization.multi_session import (
    MultiSessionRateControl,
    solve_multi_sunicast,
)
from repro.optimization.problem import session_graph_from_network
from repro.optimization.rate_control import RateControlConfig
from repro.optimization.sunicast import solve_sunicast
from repro.topology.random_network import fig1_sample_topology


def two_sessions():
    net = fig1_sample_topology()
    return (
        session_graph_from_network(net, 0, 5),
        session_graph_from_network(net, 1, 5),
    )


class TestMultiSessionLP:
    def test_total_bounded_by_single_session_sum(self):
        g1, g2 = two_sessions()
        total, per = solve_multi_sunicast([g1, g2])
        solo1 = solve_sunicast(g1).throughput
        solo2 = solve_sunicast(g2).throughput
        # Sharing the channel can never beat the sessions run alone.
        assert total <= solo1 + solo2 + 1e-9
        assert len(per) == 2
        assert total == pytest.approx(sum(per))

    def test_single_session_reduces_to_sunicast(self):
        g1, _ = two_sessions()
        total, per = solve_multi_sunicast([g1])
        assert total == pytest.approx(solve_sunicast(g1).throughput, rel=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            solve_multi_sunicast([])


class TestMultiSessionRateControl:
    def test_both_sessions_get_positive_throughput(self):
        g1, g2 = two_sessions()
        result = MultiSessionRateControl([g1, g2]).run()
        assert all(t > 0.01 for t in result.throughputs)

    def test_fairness_vs_total_lp(self):
        # The proportional-fair distributed solution serves both sessions;
        # the max-total LP may starve one.  Total must stay in the same
        # ballpark as the LP total (subgradient overshoot tolerated).
        g1, g2 = two_sessions()
        result = MultiSessionRateControl([g1, g2]).run()
        total, _ = solve_multi_sunicast([g1, g2])
        assert result.total_throughput <= total * 1.35

    def test_capacity_mismatch_rejected(self):
        from dataclasses import replace

        g1, g2 = two_sessions()
        g2 = replace(g2, capacity=g2.capacity * 2)
        with pytest.raises(ValueError, match="capacity"):
            MultiSessionRateControl([g1, g2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiSessionRateControl([])

    def test_respects_iteration_cap(self):
        g1, g2 = two_sessions()
        config = RateControlConfig(max_iterations=10, min_iterations=1, patience=100)
        result = MultiSessionRateControl([g1, g2], config).run()
        assert result.iterations == 10
        assert not result.converged
