"""Step-size schedules."""

import pytest

from repro.optimization.subgradient import (
    ConstantStepSize,
    DiminishingStepSize,
    project_nonnegative,
)


class TestDiminishing:
    def test_paper_fig1_values(self):
        # A=1, B=0.5, C=10 (the paper's Fig. 1 constants).
        theta = DiminishingStepSize(a=1.0, b=0.5, c=10.0)
        assert theta(0) == pytest.approx(2.0)
        assert theta(1) == pytest.approx(1 / 10.5)

    def test_decreasing(self):
        theta = DiminishingStepSize()
        values = [theta(t) for t in range(50)]
        assert all(x > y for x, y in zip(values, values[1:]))

    def test_divergent_sum(self):
        # sum theta(t) must diverge (necessary for convergence from any
        # start); check it keeps growing well past any bound over a
        # window.
        theta = DiminishingStepSize(a=1.0, b=1.0, c=1.0)
        partial = sum(theta(t) for t in range(10_000))
        assert partial > 9.0  # ~ln(10000)

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            DiminishingStepSize()(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiminishingStepSize(a=0)
        with pytest.raises(ValueError):
            DiminishingStepSize(b=0)
        with pytest.raises(ValueError):
            DiminishingStepSize(c=-1)

    def test_c_zero_gives_constant(self):
        theta = DiminishingStepSize(a=1.0, b=2.0, c=0.0)
        assert theta(0) == theta(100) == pytest.approx(0.5)


class TestConstant:
    def test_constant_value(self):
        theta = ConstantStepSize(0.1)
        assert theta(0) == theta(1000) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantStepSize(0.0)
        with pytest.raises(ValueError):
            ConstantStepSize(0.1)(-2)


class TestProjection:
    def test_projects_negative_to_zero(self):
        assert project_nonnegative(-3.5) == 0.0

    def test_passes_positive(self):
        assert project_nonnegative(1.25) == 1.25

    def test_zero(self):
        assert project_nonnegative(0.0) == 0.0
