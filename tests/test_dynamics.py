"""Link-quality dynamics and re-planning cost."""

import numpy as np
import pytest

from repro.optimization.replanning import replan_cost
from repro.topology.dynamics import (
    perturb_link_qualities,
    quality_drift,
)
from repro.topology.random_network import diamond_topology, random_network
from repro.util.rng import RngFactory


class TestPerturbation:
    def test_zero_sigma_is_identity(self):
        net = random_network(30, rng=RngFactory(1).derive("t"))
        same = perturb_link_qualities(net, sigma=0.0)
        assert sorted(same.links()) == sorted(net.links())

    def test_geometry_preserved(self):
        net = random_network(30, rng=RngFactory(2).derive("t"))
        drifted = perturb_link_qualities(net, sigma=0.5, rng=np.random.default_rng(0))
        assert np.array_equal(drifted.positions, net.positions)
        assert {(i, j) for i, j, _ in drifted.links()} == {
            (i, j) for i, j, _ in net.links()
        }

    def test_probabilities_stay_in_bounds(self):
        net = random_network(30, rng=RngFactory(3).derive("t"))
        drifted = perturb_link_qualities(net, sigma=3.0, rng=np.random.default_rng(1))
        for _, _, p in drifted.links():
            assert 0.02 <= p <= 0.995

    def test_larger_sigma_larger_drift(self):
        net = random_network(40, rng=RngFactory(4).derive("t"))
        small = perturb_link_qualities(net, sigma=0.1, rng=np.random.default_rng(2))
        large = perturb_link_qualities(net, sigma=1.0, rng=np.random.default_rng(2))
        assert quality_drift(net, large) > quality_drift(net, small)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            perturb_link_qualities(diamond_topology(), sigma=-0.1)


class TestDrift:
    def test_self_drift_zero(self):
        net = diamond_topology()
        assert quality_drift(net, net) == 0.0

    def test_mismatched_link_sets_rejected(self):
        with pytest.raises(ValueError, match="different link sets"):
            quality_drift(diamond_topology(), diamond_topology(p_st=0.1))


class TestReplanCost:
    def test_cost_components_positive(self):
        net = random_network(50, rng=RngFactory(5).derive("t"))
        # Find a plannable pair.
        from repro.routing.node_selection import NodeSelectionError, select_forwarders

        pair = None
        for s in range(net.node_count):
            for t in range(net.node_count - 1, -1, -1):
                if s == t:
                    continue
                try:
                    select_forwarders(net, s, t)
                    pair = (s, t)
                    break
                except NodeSelectionError:
                    continue
            if pair:
                break
        assert pair is not None
        cost = replan_cost(net, *pair)
        assert cost.flood_transmissions > 0
        assert cost.rate_control_messages > 0
        assert cost.rate_control_iterations > 0
        assert cost.channel_seconds > 0

    def test_invalid_packet_size(self):
        net = diamond_topology()
        with pytest.raises(ValueError):
            replan_cost(net, 0, 3, control_packet_bytes=0)

    def test_overhead_amortizes_over_long_sessions(self):
        # Paper Sec. 4: re-initiation overhead is acceptable "for long
        # lived unicast sessions" — the control airtime must be small
        # next to an 800 s session.
        net = diamond_topology(capacity=2e4)
        cost = replan_cost(net, 0, 3)
        assert cost.channel_seconds < 0.1 * 800.0
